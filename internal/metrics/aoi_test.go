package metrics

import (
	"math"
	"testing"

	"gossipdisc/internal/core"
	"gossipdisc/internal/gen"
	"gossipdisc/internal/graph"
	"gossipdisc/internal/rng"
	"gossipdisc/internal/sim"
)

// fakeDelta builds a minimal RoundDelta for direct ObserveDelta tests.
func fakeDelta(round int, remaining int, touched ...int32) *sim.RoundDelta {
	return &sim.RoundDelta{Round: round, EdgesRemaining: remaining, Touched: touched}
}

func TestAoITrajectoryHandComputed(t *testing.T) {
	g := gen.Path(4) // only N() matters to the trajectory
	a := &AoITrajectory{}

	// Round 1: nodes 0 and 1 updated. last = [1, 1, 0, 0].
	a.ObserveDelta(g, fakeDelta(1, 5, 0, 1))
	// Round 2: nothing. Ages grow in silence.
	a.ObserveDelta(g, fakeDelta(2, 5))
	// Round 3: node 0 again, node 2 first time. last = [3, 1, 3, 0].
	a.ObserveDelta(g, fakeDelta(3, 5, 0, 2))

	want := []AoISample{
		{Round: 1, MeanAge: 1 - 2.0/4, MaxAge: 1}, // node 3 never updated
		{Round: 2, MeanAge: 2 - 2.0/4, MaxAge: 2}, // silence: +1 across the board
		{Round: 3, MeanAge: 3 - 7.0/4, MaxAge: 3}, // node 3 still at 0
	}
	if len(a.Samples) != len(want) {
		t.Fatalf("recorded %d samples, want %d", len(a.Samples), len(want))
	}
	for i, w := range want {
		got := a.Samples[i]
		if got.Round != w.Round || math.Abs(got.MeanAge-w.MeanAge) > 1e-12 || math.Abs(got.MaxAge-w.MaxAge) > 1e-12 {
			t.Fatalf("sample %d = %+v, want %+v", i, got, w)
		}
	}

	// Round 4: node 3's first update makes the lazy heap authoritative:
	// last = [3, 1, 3, 4], min is node 1 at time 1.
	a.ObserveDelta(g, fakeDelta(4, 5, 3))
	s := a.Samples[len(a.Samples)-1]
	if s.MaxAge != 3 {
		t.Fatalf("round 4 max age = %v, want 3 (node 1, last updated at 1)", s.MaxAge)
	}
	if got := a.Age(1); got != 3 {
		t.Fatalf("Age(1) = %v, want 3", got)
	}
	if got := a.Age(3); got != 0 {
		t.Fatalf("Age(3) = %v, want 0 (just updated)", got)
	}
}

func TestAoITrajectorySubsampling(t *testing.T) {
	g := gen.Path(3)
	a := &AoITrajectory{Every: 4}
	for round := 1; round <= 10; round++ {
		a.ObserveDelta(g, fakeDelta(round, 1, int32(round%3)))
	}
	// Rounds 4 and 8 recorded; Finalize appends the pending round 10.
	a.Finalize()
	var rounds []int
	for _, s := range a.Samples {
		rounds = append(rounds, s.Round)
	}
	if len(rounds) != 3 || rounds[0] != 4 || rounds[1] != 8 || rounds[2] != 10 {
		t.Fatalf("subsampled rounds = %v, want [4 8 10]", rounds)
	}
	a.Finalize() // idempotent
	if len(a.Samples) != 3 {
		t.Fatalf("Finalize is not idempotent: %d samples", len(a.Samples))
	}
	// The terminal round (EdgesRemaining == 0) is always recorded.
	a.ObserveDelta(g, fakeDelta(11, 0, 1))
	if last := a.Samples[len(a.Samples)-1]; last.Round != 11 {
		t.Fatalf("terminal round not recorded: %+v", last)
	}
}

// TestAoITrajectoryMatchesBruteForce replays a real tick run and checks the
// incremental mean/max against a brute-force recompute every round.
func TestAoITrajectoryMatchesBruteForce(t *testing.T) {
	const n = 40
	g := gen.Cycle(n)
	a := &AoITrajectory{}
	last := make([]float64, n)
	s := sim.NewAsyncSession(g, core.Push{}, rng.New(3), sim.AsyncConfig{})
	for {
		d, ok := s.Step()
		if d == nil {
			break
		}
		a.ObserveDelta(g, d)
		now := float64(d.Round)
		for _, u := range d.Touched {
			last[u] = now
		}
		sum, min := 0.0, math.Inf(1)
		for _, l := range last {
			sum += l
			if l < min {
				min = l
			}
		}
		got := a.Samples[len(a.Samples)-1]
		if math.Abs(got.MeanAge-(now-sum/n)) > 1e-9 || math.Abs(got.MaxAge-(now-min)) > 1e-9 {
			t.Fatalf("round %d: incremental (%v, %v) vs brute force (%v, %v)",
				d.Round, got.MeanAge, got.MaxAge, now-sum/n, now-min)
		}
		if !ok {
			break
		}
	}
	if !s.Converged() {
		t.Fatal("run did not converge")
	}
	means, maxes := a.MeanAges(), a.MaxAges()
	if len(means) != len(a.Samples) || len(maxes) != len(a.Samples) {
		t.Fatalf("series lengths %d/%d vs %d samples", len(means), len(maxes), len(a.Samples))
	}
}

func TestAoITrajectoryEmptyGraph(t *testing.T) {
	g := graph.NewUndirected(0)
	a := &AoITrajectory{}
	a.ObserveDelta(g, fakeDelta(1, 0))
	if s := a.Samples[0]; s.MeanAge != 0 || s.MaxAge != 0 {
		t.Fatalf("n=0 sample: %+v", s)
	}
}
