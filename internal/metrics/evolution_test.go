package metrics

import (
	"math"
	"testing"

	"gossipdisc/internal/gen"
	"gossipdisc/internal/graph"
	"gossipdisc/internal/rng"
)

func TestTriangleCount(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Undirected
		want int
	}{
		{"K3", gen.Complete(3), 1},
		{"K4", gen.Complete(4), 4},
		{"K5", gen.Complete(5), 10},
		{"path5", gen.Path(5), 0},
		{"cycle4", gen.Cycle(4), 0},
		{"star6", gen.Star(6), 0},
		{"paw", gen.Fig1cGraph(), 1},
		{"empty", graph.NewUndirected(4), 0},
	}
	for _, c := range cases {
		if got := TriangleCount(c.g); got != c.want {
			t.Fatalf("%s: triangles %d want %d", c.name, got, c.want)
		}
	}
}

func TestTriangleCountMatchesNaive(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		n := 5 + r.Intn(15)
		g := gen.ConnectedER(n, 0.3, r)
		naive := 0
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				for c := b + 1; c < n; c++ {
					if g.HasEdge(a, b) && g.HasEdge(b, c) && g.HasEdge(a, c) {
						naive++
					}
				}
			}
		}
		if got := TriangleCount(g); got != naive {
			t.Fatalf("trial %d: triangles %d naive %d", trial, got, naive)
		}
	}
}

func TestGlobalClustering(t *testing.T) {
	if c := GlobalClustering(gen.Complete(5)); math.Abs(c-1) > 1e-12 {
		t.Fatalf("K5 clustering %v", c)
	}
	if c := GlobalClustering(gen.Star(6)); c != 0 {
		t.Fatalf("star clustering %v", c)
	}
	if c := GlobalClustering(graph.NewUndirected(3)); c != 0 {
		t.Fatalf("empty clustering %v", c)
	}
	// Paw: 1 triangle, wedges: deg hist 1,2,2,3 -> 0+1+1+3 = 5; C = 3/5.
	if c := GlobalClustering(gen.Fig1cGraph()); math.Abs(c-0.6) > 1e-12 {
		t.Fatalf("paw clustering %v want 0.6", c)
	}
}

func TestLocalClustering(t *testing.T) {
	g := gen.Fig1cGraph() // triangle 0,1,2 + pendant 3 on 2
	if c := LocalClustering(g, 0); math.Abs(c-1) > 1e-12 {
		t.Fatalf("node 0 local clustering %v", c)
	}
	// Node 2 has neighbors {0,1,3}; only {0,1} linked: 1 of 3 pairs.
	if c := LocalClustering(g, 2); math.Abs(c-1.0/3) > 1e-12 {
		t.Fatalf("node 2 local clustering %v", c)
	}
	if c := LocalClustering(g, 3); c != 0 {
		t.Fatalf("pendant local clustering %v", c)
	}
}

func TestMeanLocalClustering(t *testing.T) {
	// Paw: nodes 0,1 have C=1; node 2 has 1/3; node 3 has 0 → mean 7/12.
	if c := MeanLocalClustering(gen.Fig1cGraph()); math.Abs(c-7.0/12) > 1e-12 {
		t.Fatalf("paw mean local clustering %v want %v", c, 7.0/12)
	}
	if c := MeanLocalClustering(graph.NewUndirected(0)); c != 0 {
		t.Fatalf("empty mean clustering %v", c)
	}
}

func TestNeighborhoodProfile(t *testing.T) {
	// Path 0-1-2: N1 sizes (1,2,1) mean 4/3; N2 sizes (1,0,1) mean 2/3.
	n1, n2, n3 := NeighborhoodProfile(gen.Path(3))
	if math.Abs(n1-4.0/3) > 1e-12 || math.Abs(n2-2.0/3) > 1e-12 || n3 != 0 {
		t.Fatalf("path3 profile %v %v %v", n1, n2, n3)
	}
	// Complete graph: N1 = n-1, no 2-hop nodes.
	n1, n2, _ = NeighborhoodProfile(gen.Complete(6))
	if n1 != 5 || n2 != 0 {
		t.Fatalf("K6 profile %v %v", n1, n2)
	}
}

func TestTakeEvolution(t *testing.T) {
	s := TakeEvolution(7, gen.Cycle(6))
	if s.Round != 7 || s.Edges != 6 || s.Diameter != 3 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.Clustering != 0 {
		t.Fatalf("cycle clustering %v", s.Clustering)
	}
	if s.MeanN1 != 2 || s.MeanN2 != 2 || s.MeanN3 != 1 {
		t.Fatalf("cycle profile %+v", s)
	}
}
