package metrics

// This file implements the network-evolution observables the paper's
// introduction motivates for the social-network application: "how and when
// do clusters emerge? how does the diameter change with time?" and
// "predicting the sizes of the immediate neighbors as well as the sizes of
// the second and third-degree neighbors (these are listed for every node in
// LinkedIn)". Experiment E17 tracks these along discovery trajectories.

import (
	"gossipdisc/internal/graph"
)

// TriangleCount returns the number of triangles in g, computed by counting,
// for every edge {u, v} with u < v, the common neighbors w > v via bitset
// row intersection — O(m · n/64) words.
func TriangleCount(g *graph.Undirected) int {
	n := g.N()
	total := 0
	for u := 0; u < n; u++ {
		row := g.NeighborRow(u)
		for _, v := range g.Neighbors(u, nil) {
			if v <= u {
				continue
			}
			// Count common neighbors w with w > v to count each triangle
			// exactly once (u < v < w).
			common := row.Clone()
			common.IntersectWith(g.NeighborRow(v))
			common.ForEach(func(w int) {
				if w > v {
					total++
				}
			})
		}
	}
	return total
}

// GlobalClustering returns the global clustering coefficient
// 3·triangles / open-and-closed-wedges (0 when the graph has no wedge).
func GlobalClustering(g *graph.Undirected) float64 {
	wedges := 0
	for u := 0; u < g.N(); u++ {
		d := g.Degree(u)
		wedges += d * (d - 1) / 2
	}
	if wedges == 0 {
		return 0
	}
	return 3 * float64(TriangleCount(g)) / float64(wedges)
}

// LocalClustering returns node u's local clustering coefficient: the edge
// density among u's neighbors (0 for degree < 2).
func LocalClustering(g *graph.Undirected, u int) float64 {
	neigh := g.Neighbors(u, nil)
	d := len(neigh)
	if d < 2 {
		return 0
	}
	links := 0
	for i, a := range neigh {
		for _, b := range neigh[i+1:] {
			if g.HasEdge(a, b) {
				links++
			}
		}
	}
	return 2 * float64(links) / float64(d*(d-1))
}

// MeanLocalClustering returns the average local clustering coefficient
// (the Watts–Strogatz network clustering measure).
func MeanLocalClustering(g *graph.Undirected) float64 {
	n := g.N()
	if n == 0 {
		return 0
	}
	sum := 0.0
	for u := 0; u < n; u++ {
		sum += LocalClustering(g, u)
	}
	return sum / float64(n)
}

// NeighborhoodProfile returns the mean sizes of the distance-1, -2 and -3
// neighborhoods over all nodes — LinkedIn's 1st/2nd/3rd-degree connection
// counts.
func NeighborhoodProfile(g *graph.Undirected) (n1, n2, n3 float64) {
	n := g.N()
	if n == 0 {
		return 0, 0, 0
	}
	for u := 0; u < n; u++ {
		sizes := g.NeighborhoodSizes(u, 3)
		n1 += float64(sizes[1])
		n2 += float64(sizes[2])
		n3 += float64(sizes[3])
	}
	fn := float64(n)
	return n1 / fn, n2 / fn, n3 / fn
}

// EvolutionSnapshot captures the §1 observables at one round.
type EvolutionSnapshot struct {
	Round      int
	Edges      int
	Diameter   int
	Clustering float64 // global clustering coefficient
	MeanN1     float64 // mean 1st-degree neighborhood size
	MeanN2     float64 // mean 2nd-degree neighborhood size
	MeanN3     float64 // mean 3rd-degree neighborhood size
}

// TakeEvolution computes an EvolutionSnapshot (O(n·m) for the diameter).
func TakeEvolution(round int, g *graph.Undirected) EvolutionSnapshot {
	n1, n2, n3 := NeighborhoodProfile(g)
	return EvolutionSnapshot{
		Round:      round,
		Edges:      g.M(),
		Diameter:   g.Diameter(),
		Clustering: GlobalClustering(g),
		MeanN1:     n1,
		MeanN2:     n2,
		MeanN3:     n3,
	}
}
