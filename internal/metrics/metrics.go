// Package metrics computes the graph observables the paper's analysis
// tracks: minimum degree (the proofs' progress measure), missing edges,
// neighborhood structure, and per-round trajectories.
package metrics

import (
	"gossipdisc/internal/graph"
)

// Snapshot is a per-round summary of an undirected graph's state.
type Snapshot struct {
	Round     int
	Edges     int
	Missing   int
	MinDegree int
	MaxDegree int
}

// Take summarizes g at the given round.
func Take(round int, g *graph.Undirected) Snapshot {
	return Snapshot{
		Round:     round,
		Edges:     g.M(),
		Missing:   g.MissingEdges(),
		MinDegree: g.MinDegree(),
		MaxDegree: g.MaxDegree(),
	}
}

// Trajectory records a time series of snapshots. Its Observe method plugs
// directly into sim.Config.Observer; pass Every > 1 to subsample rounds
// (the final converged round is always captured because convergence implies
// MinDegree == n-1, observed at the last call).
type Trajectory struct {
	Every     int
	Snapshots []Snapshot
}

// Observe implements the sim observer signature.
func (t *Trajectory) Observe(round int, g *graph.Undirected) {
	every := t.Every
	if every <= 0 {
		every = 1
	}
	if round%every == 0 || g.IsComplete() {
		t.Snapshots = append(t.Snapshots, Take(round, g))
	}
}

// MinDegrees returns the minimum-degree series of the trajectory.
func (t *Trajectory) MinDegrees() []int {
	out := make([]int, len(t.Snapshots))
	for i, s := range t.Snapshots {
		out[i] = s.MinDegree
	}
	return out
}

// RoundsToMinDegree returns the first recorded round at which the minimum
// degree reached at least target, or -1 if it never did.
func (t *Trajectory) RoundsToMinDegree(target int) int {
	for _, s := range t.Snapshots {
		if s.MinDegree >= target {
			return s.Round
		}
	}
	return -1
}

// GrowthEpochs returns, for each doubling target δ₀·(1+1/8)^k (the paper's
// growth factor), the first round where the minimum degree reached it. The
// series ends when the target exceeds n-1 (capped there). This is the
// empirical counterpart of the Theorem 8/12 proof engine: each epoch should
// cost O(n log n) rounds.
func (t *Trajectory) GrowthEpochs(delta0, n int) []int {
	if delta0 < 1 {
		delta0 = 1
	}
	var rounds []int
	target := float64(delta0)
	for {
		target *= 1.125
		goal := int(target)
		if goal > n-1 {
			goal = n - 1
		}
		r := t.RoundsToMinDegree(goal)
		rounds = append(rounds, r)
		if goal == n-1 {
			return rounds
		}
	}
}

// SubsetComplete returns a sim Done predicate that fires when the subgraph
// induced by nodes is complete — the paper's subgroup-discovery criterion.
func SubsetComplete(nodes []int) func(*graph.Undirected) bool {
	return func(g *graph.Undirected) bool {
		for i, u := range nodes {
			for _, v := range nodes[i+1:] {
				if u != v && !g.HasEdge(u, v) {
					return false
				}
			}
		}
		return true
	}
}

// AliveComplete returns a sim Done predicate that fires when all pairs of
// alive nodes are adjacent (the convergence target under crash failures).
func AliveComplete(alive []bool) func(*graph.Undirected) bool {
	return func(g *graph.Undirected) bool {
		n := g.N()
		for u := 0; u < n; u++ {
			if !alive[u] {
				continue
			}
			for v := u + 1; v < n; v++ {
				if alive[v] && !g.HasEdge(u, v) {
					return false
				}
			}
		}
		return true
	}
}

// DirectedSnapshot is a per-round summary of a directed graph's state.
type DirectedSnapshot struct {
	Round int
	Arcs  int
}

// DirectedTrajectory records directed snapshots; Observe plugs into
// sim.DirectedConfig.Observer.
type DirectedTrajectory struct {
	Every     int
	Snapshots []DirectedSnapshot
}

// Observe implements the directed sim observer signature.
func (t *DirectedTrajectory) Observe(round int, g *graph.Directed) {
	every := t.Every
	if every <= 0 {
		every = 1
	}
	if round%every == 0 {
		t.Snapshots = append(t.Snapshots, DirectedSnapshot{Round: round, Arcs: g.M()})
	}
}
