// Package metrics computes the graph observables the paper's analysis
// tracks: minimum degree (the proofs' progress measure), missing edges,
// degree histograms, neighborhood structure, and per-round trajectories.
//
// Trajectories consume either of the engine's observer streams. Snapshot
// mode (Trajectory.Observe ← sim.Config.Observer) summarizes the live graph
// by scanning it; delta mode (Trajectory.ObserveDelta ←
// sim.Config.DeltaObserver) consumes the per-round deltas the commit path
// emits and maintains all per-node state incrementally, which keeps
// trajectory recording O(new edges) per round and allocation-flat. Both
// modes always record the final committed round even under subsampling
// (Every > 1) — see Trajectory.Finalize.
//
// Stepped sessions need no observer wiring at all: sim.Session.Step returns
// the same delta the observer would receive, so a driver loop can feed a
// trajectory directly —
//
//	for {
//	    d, more := sess.Step()
//	    if d == nil {
//	        break
//	    }
//	    traj.ObserveDelta(sess.Graph(), d)
//	    if !more {
//	        break
//	    }
//	}
//
// (cmd/gossipsim's -trace flag drives trial 0 exactly this way.)
package metrics

import (
	"gossipdisc/internal/graph"
	"gossipdisc/internal/sim"
)

// Snapshot is a per-round summary of an undirected graph's state.
type Snapshot struct {
	Round     int
	Edges     int
	Missing   int
	MinDegree int
	MaxDegree int
}

// Take summarizes g at the given round.
func Take(round int, g *graph.Undirected) Snapshot {
	return Snapshot{
		Round:     round,
		Edges:     g.M(),
		Missing:   g.MissingEdges(),
		MinDegree: g.MinDegree(),
		MaxDegree: g.MaxDegree(),
	}
}

// Trajectory records a time series of snapshots. It has two observation
// modes sharing the same Snapshots output:
//
//   - Snapshot mode: Observe plugs into sim.Config.Observer and summarizes
//     the graph by scanning it (O(n) per recorded round).
//   - Delta mode: ObserveDelta plugs into sim.Config.DeltaObserver and
//     maintains degrees, the degree histogram, and the min/max degree
//     incrementally from the round's edge delta (O(new edges) per round, no
//     graph scans after the first round).
//
// Use one mode per Trajectory, not both. Pass Every > 1 to subsample
// rounds; the final committed round is always recorded regardless of
// subsampling — it is held pending and appended by Finalize, which every
// accessor calls, so `traj.Snapshots` readers should call Finalize() after
// the run (the accessor methods do it automatically).
type Trajectory struct {
	Every     int
	Snapshots []Snapshot

	// Pending final round (see Finalize). In snapshot mode the graph
	// pointer is retained and summarized lazily — it is the live run graph,
	// so at Finalize time it holds exactly the state of the last observed
	// round. In delta mode the snapshot is materialized immediately (O(1))
	// and held by the shared recorder.
	pendingRound int
	pendingG     *graph.Undirected
	rec          recorder[Snapshot]

	// Incremental state (delta mode only).
	inited bool
	m      int
	minDeg int
	maxDeg int
	deg    []int32
	hist   []int32 // hist[d] = number of nodes with degree d
}

// Observe implements the sim observer signature (snapshot mode). Skipped
// rounds are held as a graph pointer, not a snapshot, so subsampled rounds
// cost nothing until Finalize — this lazy path deliberately bypasses the
// shared recorder.
func (t *Trajectory) Observe(round int, g *graph.Undirected) {
	if round%t.every() == 0 || g.IsComplete() {
		t.Snapshots = append(t.Snapshots, Take(round, g))
		t.pendingG, t.rec.have = nil, false
		return
	}
	t.pendingRound, t.pendingG, t.rec.have = round, g, true
}

// ObserveDelta implements the sim delta observer signature (delta mode). It
// consumes the per-round edge delta the commit path emits, so trajectory
// recording never re-scans the graph: state is initialized once from the
// first delta (rewinding that round's increments) and advanced by O(new
// edges) work per round afterwards.
func (t *Trajectory) ObserveDelta(g *graph.Undirected, d *sim.RoundDelta) {
	if !t.inited {
		t.init(g, d)
	}
	for _, u := range d.Touched {
		old := t.deg[u]
		now := old + d.DegreeInc[u]
		t.hist[old]--
		t.hist[now]++
		t.deg[u] = now
		if int(now) > t.maxDeg {
			t.maxDeg = int(now)
		}
	}
	t.m += len(d.NewEdges)
	// Degrees only grow, so the minimum degree advances monotonically:
	// the scan below costs O(n) over the whole run, not per round.
	n := len(t.deg)
	for t.minDeg < n-1 && t.hist[t.minDeg] == 0 {
		t.minDeg++
	}
	snap := Snapshot{
		Round:     d.Round,
		Edges:     t.m,
		Missing:   d.EdgesRemaining,
		MinDegree: t.minDeg,
		MaxDegree: t.maxDeg,
	}
	t.rec.observe(&t.Snapshots, t.Every, d.Round, d.EdgesRemaining == 0, snap)
}

// init seeds the incremental state from the graph as of the *first emitted
// delta* by rewinding that delta's increments, so G_0 need not be observed.
func (t *Trajectory) init(g *graph.Undirected, d *sim.RoundDelta) {
	n := g.N()
	t.deg = make([]int32, n)
	t.hist = make([]int32, n)
	for u := 0; u < n; u++ {
		t.deg[u] = int32(g.Degree(u)) - d.DegreeInc[u]
	}
	t.m = g.M() - len(d.NewEdges)
	t.minDeg, t.maxDeg = 0, 0
	if n > 0 {
		t.minDeg = n
		for _, dg := range t.deg {
			t.hist[dg]++
			if int(dg) < t.minDeg {
				t.minDeg = int(dg)
			}
			if int(dg) > t.maxDeg {
				t.maxDeg = int(dg)
			}
		}
	}
	t.inited = true
}

func (t *Trajectory) every() int {
	if t.Every <= 0 {
		return 1
	}
	return t.Every
}

// Finalize appends the last observed round if subsampling skipped it, so
// the trajectory always ends at the final committed round. It is idempotent
// and called automatically by the accessor methods; call it explicitly
// before reading Snapshots directly. In snapshot mode the pending round is
// summarized from the run's live graph at this point, so Finalize (or the
// first accessor) must run before the graph is mutated again — e.g. before
// reusing it for another run. Delta mode materializes pending snapshots
// eagerly and has no such constraint.
func (t *Trajectory) Finalize() {
	if t.pendingG != nil && t.rec.have {
		t.Snapshots = append(t.Snapshots, Take(t.pendingRound, t.pendingG))
		t.pendingG, t.rec.have = nil, false
		return
	}
	t.rec.finalize(&t.Snapshots)
}

// DegreeHistogram returns the current degree histogram maintained in delta
// mode, shaped like graph.Undirected.DegreeHistogram (length MaxDegree+1).
// It returns nil before the first delta or in snapshot mode.
func (t *Trajectory) DegreeHistogram() []int {
	if !t.inited {
		return nil
	}
	out := make([]int, t.maxDeg+1)
	for d := range out {
		out[d] = int(t.hist[d])
	}
	return out
}

// MinDegrees returns the minimum-degree series of the trajectory.
func (t *Trajectory) MinDegrees() []int {
	t.Finalize()
	out := make([]int, len(t.Snapshots))
	for i, s := range t.Snapshots {
		out[i] = s.MinDegree
	}
	return out
}

// RoundsToMinDegree returns the first recorded round at which the minimum
// degree reached at least target, or -1 if it never did.
func (t *Trajectory) RoundsToMinDegree(target int) int {
	t.Finalize()
	for _, s := range t.Snapshots {
		if s.MinDegree >= target {
			return s.Round
		}
	}
	return -1
}

// GrowthEpochs returns, for each doubling target δ₀·(1+1/8)^k (the paper's
// growth factor), the first round where the minimum degree reached it. The
// series ends when the target exceeds n-1 (capped there). This is the
// empirical counterpart of the Theorem 8/12 proof engine: each epoch should
// cost O(n log n) rounds.
func (t *Trajectory) GrowthEpochs(delta0, n int) []int {
	if delta0 < 1 {
		delta0 = 1
	}
	var rounds []int
	target := float64(delta0)
	for {
		target *= 1.125
		goal := int(target)
		if goal > n-1 {
			goal = n - 1
		}
		r := t.RoundsToMinDegree(goal)
		rounds = append(rounds, r)
		if goal == n-1 {
			return rounds
		}
	}
}

// SubsetComplete returns a sim Done predicate that fires when the subgraph
// induced by nodes is complete — the paper's subgroup-discovery criterion.
func SubsetComplete(nodes []int) func(*graph.Undirected) bool {
	return func(g *graph.Undirected) bool {
		for i, u := range nodes {
			for _, v := range nodes[i+1:] {
				if u != v && !g.HasEdge(u, v) {
					return false
				}
			}
		}
		return true
	}
}

// AliveComplete returns a sim Done predicate that fires when all pairs of
// alive nodes are adjacent (the convergence target under crash failures).
func AliveComplete(alive []bool) func(*graph.Undirected) bool {
	return func(g *graph.Undirected) bool {
		n := g.N()
		for u := 0; u < n; u++ {
			if !alive[u] {
				continue
			}
			for v := u + 1; v < n; v++ {
				if alive[v] && !g.HasEdge(u, v) {
					return false
				}
			}
		}
		return true
	}
}

// DirectedSnapshot is a per-round summary of a directed graph's state.
type DirectedSnapshot struct {
	Round int
	Arcs  int
}

// DirectedTrajectory records directed snapshots; Observe plugs into
// sim.DirectedConfig.Observer and ObserveDelta into
// sim.DirectedConfig.DeltaObserver (use one mode per trajectory). As with
// Trajectory, the final committed round is always recorded regardless of
// Every — call Finalize before reading Snapshots directly.
type DirectedTrajectory struct {
	Every     int
	Snapshots []DirectedSnapshot

	rec recorder[DirectedSnapshot]

	// Incremental arc count (delta mode only).
	inited bool
	arcs   int
}

// Observe implements the directed sim observer signature.
func (t *DirectedTrajectory) Observe(round int, g *graph.Directed) {
	t.record(DirectedSnapshot{Round: round, Arcs: g.M()}, false)
}

// ObserveDelta implements the directed sim delta observer signature. After
// initializing from the first delta (rewinding that round's arcs), the arc
// count is tracked from the delta stream alone; recording terminates
// exactly at closure because the delta carries the engine's own
// closure-arcs-remaining counter.
func (t *DirectedTrajectory) ObserveDelta(g *graph.Directed, d *sim.DirectedRoundDelta) {
	if !t.inited {
		t.arcs = g.M() - len(d.NewArcs)
		t.inited = true
	}
	t.arcs += len(d.NewArcs)
	t.record(DirectedSnapshot{Round: d.Round, Arcs: t.arcs}, d.ClosureArcsRemaining == 0)
}

func (t *DirectedTrajectory) record(s DirectedSnapshot, terminal bool) {
	t.rec.observe(&t.Snapshots, t.Every, s.Round, terminal, s)
}

// Finalize appends the last observed round if subsampling skipped it. It is
// idempotent.
func (t *DirectedTrajectory) Finalize() {
	t.rec.finalize(&t.Snapshots)
}
