package gen

import (
	"fmt"

	"gossipdisc/internal/graph"
	"gossipdisc/internal/rng"
)

// DirectedPath returns the directed path 0 → 1 → … → n-1.
func DirectedPath(n int, backend ...graph.Backend) *graph.Directed {
	g := graph.NewDirectedOn(n, pick(backend))
	for i := 0; i+1 < n; i++ {
		g.AddArc(i, i+1)
	}
	return g
}

// DirectedCycle returns the directed n-cycle.
func DirectedCycle(n int, backend ...graph.Backend) *graph.Directed {
	g := DirectedPath(n, backend...)
	if n >= 2 {
		g.AddArc(n-1, 0)
	}
	return g
}

// CompleteDigraph returns the complete digraph (all ordered pairs).
func CompleteDigraph(n int, backend ...graph.Backend) *graph.Directed {
	g := graph.NewDirectedOn(n, pick(backend))
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			g.AddArc(u, v)
		}
	}
	return g
}

// RandomStronglyConnected returns a directed cycle on a random node
// permutation plus `extra` additional uniform random arcs — strongly
// connected by construction.
func RandomStronglyConnected(n, extra int, r *rng.Rand, backend ...graph.Backend) *graph.Directed {
	g := graph.NewDirectedOn(n, pick(backend))
	perm := r.Perm(n)
	for i := 0; i < n; i++ {
		g.AddArc(perm[i], perm[(i+1)%n])
	}
	for i := 0; i < extra; i++ {
		g.AddArc(r.Intn(n), r.Intn(n))
	}
	return g
}

// RandomWeaklyConnected returns a random tree with randomly oriented edges
// plus `extra` random arcs — weakly but (typically) not strongly connected.
func RandomWeaklyConnected(n, extra int, r *rng.Rand, backend ...graph.Backend) *graph.Directed {
	g := graph.NewDirectedOn(n, pick(backend))
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		u, v := perm[i], perm[r.Intn(i)]
		if r.Bool() {
			u, v = v, u
		}
		g.AddArc(u, v)
	}
	for i := 0; i < extra; i++ {
		g.AddArc(r.Intn(n), r.Intn(n))
	}
	return g
}

// Thm14WeakLowerBound returns the weakly connected construction from the
// lower-bound half of Theorem 14's proof, on which the directed two-hop walk
// needs Ω(n² log n) rounds. n must be divisible by 4.
//
// Nodes {0, …, n-1}; arcs
//
//	(3i → j), (3i+1 → j)    for 0 <= i < n/4 and 3n/4 <= j < n,
//	(3i → 3i+1), (3i+1 → 3i+2)  for 0 <= i < n/4.
//
// The only arcs the process must add are (3i → 3i+2) for each i, each of
// which requires node 3i to take the specific two-hop walk 3i → 3i+1 → 3i+2
// against an out-degree of about n/4 — probability Θ(1/n²) per round, and
// all n/4 of these events are independent.
func Thm14WeakLowerBound(n int, backend ...graph.Backend) *graph.Directed {
	if n%4 != 0 || n < 8 {
		panic(fmt.Sprintf("gen: Thm14WeakLowerBound(%d): n must be a multiple of 4, >= 8", n))
	}
	g := graph.NewDirectedOn(n, pick(backend))
	for i := 0; i < n/4; i++ {
		for j := 3 * n / 4; j < n; j++ {
			g.AddArc(3*i, j)
			g.AddArc(3*i+1, j)
		}
		g.AddArc(3*i, 3*i+1)
		g.AddArc(3*i+1, 3*i+2)
	}
	return g
}

// MissingThm14Arcs returns the arcs the two-hop process must add on the
// Theorem 14 construction: (3i → 3i+2) for 0 <= i < n/4. Everything else is
// already transitively closed... for the chain heads; the full closure also
// includes arcs from the 3i+2 nodes (which are sinks) — they have no
// outgoing requirement.
func MissingThm14Arcs(n int) []graph.Arc {
	arcs := make([]graph.Arc, 0, n/4)
	for i := 0; i < n/4; i++ {
		arcs = append(arcs, graph.Arc{U: 3 * i, V: 3*i + 2})
	}
	return arcs
}

// Thm15StrongLowerBound returns the strongly connected construction of
// Theorem 15 (Figures 3–4), on which the directed two-hop walk needs Ω(n²)
// expected rounds. n must be even and >= 4.
//
// With 1-indexed nodes {1..n} the paper defines
//
//	E = {(i, j) : 1 <= i, j <= n/2}             (complete digraph on the low half)
//	  ∪ {(i, i+1) : n/2 <= i < n}               (a chain through the high half)
//	  ∪ {(i, j) : i > j, i > n/2}               (high nodes point at everything below)
//
// Here nodes are 0-indexed: low half L = {0..n/2-1} is a complete digraph;
// arcs (i → i+1) for n/2-1 <= i <= n-2; and every node i >= n/2 has arcs to
// all j < i.
func Thm15StrongLowerBound(n int, backend ...graph.Backend) *graph.Directed {
	if n%2 != 0 || n < 4 {
		panic(fmt.Sprintf("gen: Thm15StrongLowerBound(%d): n must be even, >= 4", n))
	}
	g := graph.NewDirectedOn(n, pick(backend))
	half := n / 2
	for i := 0; i < half; i++ {
		for j := 0; j < half; j++ {
			g.AddArc(i, j)
		}
	}
	for i := half - 1; i <= n-2; i++ {
		g.AddArc(i, i+1)
	}
	for i := half; i < n; i++ {
		for j := 0; j < i; j++ {
			g.AddArc(i, j)
		}
	}
	return g
}

// LayeredDAG returns a DAG with `layers` layers of `width` nodes where every
// node has arcs to all nodes of the next layer.
func LayeredDAG(layers, width int, backend ...graph.Backend) *graph.Directed {
	g := graph.NewDirectedOn(layers*width, pick(backend))
	for l := 0; l+1 < layers; l++ {
		for a := 0; a < width; a++ {
			for b := 0; b < width; b++ {
				g.AddArc(l*width+a, (l+1)*width+b)
			}
		}
	}
	return g
}
