package gen

import (
	"testing"
	"testing/quick"

	"gossipdisc/internal/rng"
)

func TestPathCycleStar(t *testing.T) {
	p := Path(5)
	if p.M() != 4 || !p.IsConnected() || p.Diameter() != 4 {
		t.Fatalf("path wrong: %v", p)
	}
	c := Cycle(5)
	if c.M() != 5 || c.MinDegree() != 2 || c.Diameter() != 2 {
		t.Fatalf("cycle wrong: %v", c)
	}
	if Cycle(2).M() != 1 {
		t.Fatal("Cycle(2) should degrade to an edge")
	}
	s := Star(6)
	if s.M() != 5 || s.Degree(0) != 5 || s.MinDegree() != 1 {
		t.Fatalf("star wrong: %v", s)
	}
}

func TestComplete(t *testing.T) {
	k := Complete(7)
	if !k.IsComplete() || k.M() != 21 {
		t.Fatalf("K7 wrong: %v", k)
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(3, 4)
	if g.N() != 7 || g.M() != 12 {
		t.Fatalf("K(3,4) wrong: %v", g)
	}
	if g.HasEdge(0, 1) || !g.HasEdge(0, 3) {
		t.Fatal("bipartite structure wrong")
	}
}

func TestBinaryTree(t *testing.T) {
	g := BinaryTree(7)
	if g.M() != 6 || !g.IsConnected() {
		t.Fatalf("bintree wrong: %v", g)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 2) || !g.HasEdge(1, 3) {
		t.Fatal("bintree edges wrong")
	}
}

func TestRandomTree(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{1, 2, 10, 50} {
		g := RandomTree(n, r)
		if g.M() != n-1 && n > 0 {
			if !(n == 1 && g.M() == 0) {
				t.Fatalf("tree on %d nodes has %d edges", n, g.M())
			}
		}
		if !g.IsConnected() {
			t.Fatalf("tree on %d nodes disconnected", n)
		}
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 || g.M() != 3*3+2*4 {
		t.Fatalf("grid wrong: %v", g)
	}
	if !g.IsConnected() || g.Diameter() != 5 {
		t.Fatalf("grid diameter %d", g.Diameter())
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(3)
	if g.N() != 8 || g.M() != 12 || g.MinDegree() != 3 || g.MaxDegree() != 3 {
		t.Fatalf("Q3 wrong: %v", g)
	}
	if g.Diameter() != 3 {
		t.Fatalf("Q3 diameter %d", g.Diameter())
	}
}

func TestLollipopBarbell(t *testing.T) {
	l := Lollipop(10)
	if !l.IsConnected() || l.N() != 10 {
		t.Fatalf("lollipop wrong: %v", l)
	}
	if l.MinDegree() != 1 { // path end
		t.Fatalf("lollipop min degree %d", l.MinDegree())
	}
	b := Barbell(10)
	if !b.IsConnected() || b.M() != 2*10+1 {
		t.Fatalf("barbell wrong: %v m=%d", b, b.M())
	}
}

func TestConnectedER(t *testing.T) {
	r := rng.New(5)
	for _, n := range []int{5, 20, 60} {
		g := ConnectedER(n, 1.5/float64(n), r)
		if !g.IsConnected() {
			t.Fatalf("ER(%d) disconnected", n)
		}
	}
	// Dense ER should rarely need patching and be connected anyway.
	g := ConnectedER(30, 0.5, r)
	if !g.IsConnected() {
		t.Fatal("dense ER disconnected")
	}
}

func TestRandomRegular(t *testing.T) {
	r := rng.New(7)
	for _, tc := range []struct{ n, d int }{{10, 3}, {16, 4}, {8, 7}, {6, 0}} {
		g := RandomRegular(tc.n, tc.d, r)
		for u := 0; u < tc.n; u++ {
			if g.Degree(u) != tc.d {
				t.Fatalf("RandomRegular(%d,%d): node %d degree %d", tc.n, tc.d, u, g.Degree(u))
			}
		}
	}
}

func TestRandomRegularPanics(t *testing.T) {
	r := rng.New(1)
	for _, f := range []func(){
		func() { RandomRegular(5, 3, r) }, // odd product
		func() { RandomRegular(4, 4, r) }, // d >= n
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPreferentialAttachment(t *testing.T) {
	r := rng.New(9)
	g := PreferentialAttachment(100, 2, r)
	if !g.IsConnected() {
		t.Fatal("PA graph disconnected")
	}
	// Every node beyond the seed clique contributes exactly m edges.
	wantM := 3 + (100-3)*2
	if g.M() != wantM {
		t.Fatalf("PA edges %d want %d", g.M(), wantM)
	}
	// Power-lawish: max degree should dominate min degree.
	if g.MaxDegree() < 3*g.MinDegree() {
		t.Fatalf("PA degrees suspiciously flat: min=%d max=%d", g.MinDegree(), g.MaxDegree())
	}
}

func TestTwoClustersBridge(t *testing.T) {
	r := rng.New(11)
	g := TwoClustersBridge(40, 0.3, r)
	if !g.IsConnected() || g.N() != 40 {
		t.Fatalf("two clusters wrong: %v", g)
	}
	if !g.HasEdge(0, 20) {
		t.Fatal("bridge edge missing")
	}
}

func TestNearComplete(t *testing.T) {
	r := rng.New(13)
	for _, k := range []int{0, 1, 5, 20} {
		g := NearComplete(10, k, r)
		if g.MissingEdges() != k {
			t.Fatalf("NearComplete(10,%d) missing %d", k, g.MissingEdges())
		}
		if !g.IsConnected() {
			t.Fatalf("NearComplete(10,%d) disconnected", k)
		}
	}
}

func TestNearCompletePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NearComplete(5, 7, rng.New(1)) // max removable for n=5 is 10-4=6
}

func TestFig1c(t *testing.T) {
	g := Fig1cGraph()
	h := Fig1cSubgraph()
	if g.M() != 4 || h.M() != 3 {
		t.Fatalf("Fig1c sizes: %d, %d", g.M(), h.M())
	}
	if !g.IsConnected() || !h.IsConnected() {
		t.Fatal("Fig1c graphs must be connected")
	}
	// H is the subgraph of G induced by the triangle nodes, so every edge
	// of H (on nodes 0..2) must be an edge of G, and H must be complete.
	for _, e := range h.Edges() {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("subgraph edge %v not in G", e)
		}
	}
	if !h.IsComplete() {
		t.Fatal("Fig1c subgraph (triangle) should be complete")
	}
	if !g.InducedSubgraph([]int{0, 1, 2}).Equal(h) {
		t.Fatal("Fig1cSubgraph is not the induced triangle of Fig1cGraph")
	}
}

func TestNonMonotonePair(t *testing.T) {
	g, h := NonMonotonePair()
	if g.N() != 4 || h.N() != 4 || g.M() != 5 || h.M() != 4 {
		t.Fatalf("pair sizes: %v, %v", g, h)
	}
	if !g.IsConnected() || !h.IsConnected() {
		t.Fatal("pair must be connected")
	}
	for _, e := range h.Edges() {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("H edge %v not in G", e)
		}
	}
	if g.HasEdge(2, 3) {
		t.Fatal("G should be K4 minus {2,3}")
	}
	// H is the 4-cycle 0-2-1-3: all degrees 2.
	if h.MinDegree() != 2 || h.MaxDegree() != 2 {
		t.Fatalf("H not a cycle: histogram %v", h.DegreeHistogram())
	}
}

func TestDirectedPathCycle(t *testing.T) {
	p := DirectedPath(4)
	if p.M() != 3 || p.IsStronglyConnected() || !p.IsWeaklyConnected() {
		t.Fatalf("directed path wrong: %v", p)
	}
	c := DirectedCycle(4)
	if c.M() != 4 || !c.IsStronglyConnected() {
		t.Fatalf("directed cycle wrong: %v", c)
	}
}

func TestCompleteDigraph(t *testing.T) {
	g := CompleteDigraph(5)
	if g.M() != 20 || !g.IsClosed() {
		t.Fatalf("complete digraph wrong: %v", g)
	}
}

func TestRandomStronglyConnected(t *testing.T) {
	r := rng.New(17)
	for _, n := range []int{2, 5, 30} {
		g := RandomStronglyConnected(n, n, r)
		if !g.IsStronglyConnected() {
			t.Fatalf("RandomStronglyConnected(%d) not strong", n)
		}
	}
}

func TestRandomWeaklyConnected(t *testing.T) {
	r := rng.New(19)
	g := RandomWeaklyConnected(30, 5, r)
	if !g.IsWeaklyConnected() {
		t.Fatal("not weakly connected")
	}
}

func TestThm14Construction(t *testing.T) {
	n := 16
	g := Thm14WeakLowerBound(n)
	if !g.IsWeaklyConnected() {
		t.Fatal("Thm14 graph not weakly connected")
	}
	if g.IsStronglyConnected() {
		t.Fatal("Thm14 graph should not be strongly connected")
	}
	// Chain arcs exist.
	for i := 0; i < n/4; i++ {
		if !g.HasArc(3*i, 3*i+1) || !g.HasArc(3*i+1, 3*i+2) {
			t.Fatalf("chain arcs missing at i=%d", i)
		}
		if g.HasArc(3*i, 3*i+2) {
			t.Fatalf("closure arc pre-exists at i=%d", i)
		}
	}
	// The missing closure arcs are exactly (3i -> 3i+2).
	missing := MissingThm14Arcs(n)
	if len(missing) != n/4 {
		t.Fatalf("missing arcs %d want %d", len(missing), n/4)
	}
	closure := g.ClosureArcCount()
	if closure != g.M()+len(missing) {
		t.Fatalf("closure %d != m %d + missing %d", closure, g.M(), len(missing))
	}
}

func TestThm14Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Thm14WeakLowerBound(10)
}

func TestThm15Construction(t *testing.T) {
	n := 12
	g := Thm15StrongLowerBound(n)
	if !g.IsStronglyConnected() {
		t.Fatal("Thm15 graph must be strongly connected")
	}
	half := n / 2
	// Low half complete digraph.
	for i := 0; i < half; i++ {
		for j := 0; j < half; j++ {
			if i != j && !g.HasArc(i, j) {
				t.Fatalf("low-half arc (%d,%d) missing", i, j)
			}
		}
	}
	// Chain through the high half.
	for i := half - 1; i <= n-2; i++ {
		if !g.HasArc(i, i+1) {
			t.Fatalf("chain arc (%d,%d) missing", i, i+1)
		}
	}
	// High nodes point at everything below.
	for i := half; i < n; i++ {
		for j := 0; j < i; j++ {
			if !g.HasArc(i, j) {
				t.Fatalf("down arc (%d,%d) missing", i, j)
			}
		}
	}
	// Out-degree of every node is at least n/2 (used by the proof).
	for u := 0; u < n; u++ {
		if g.OutDegree(u) < half-1 {
			t.Fatalf("node %d out-degree %d too small", u, g.OutDegree(u))
		}
	}
}

func TestLayeredDAG(t *testing.T) {
	g := LayeredDAG(3, 2)
	if g.N() != 6 || g.M() != 2*2*2 {
		t.Fatalf("layered DAG wrong: %v", g)
	}
	if g.IsStronglyConnected() {
		t.Fatal("DAG strongly connected")
	}
	if g.CondensationSize() != 6 {
		t.Fatal("DAG SCCs wrong")
	}
}

func TestRegistryGeneratesConnected(t *testing.T) {
	r := rng.New(23)
	for _, f := range UndirectedFamilies() {
		for _, n := range []int{f.MinN, f.MinN + 5, 33} {
			if n < f.MinN {
				continue
			}
			g := f.Generate(n, r.Split())
			if !g.IsConnected() {
				t.Fatalf("family %q at n=%d disconnected", f.Name, n)
			}
			if g.N() < 2 {
				t.Fatalf("family %q at n=%d produced %d nodes", f.Name, n, g.N())
			}
		}
	}
}

func TestRegistryDirectedWeaklyConnected(t *testing.T) {
	r := rng.New(29)
	for _, f := range DirectedFamilies() {
		n := f.MinN + 8
		g := f.Generate(n, r.Split())
		if !g.IsWeaklyConnected() {
			t.Fatalf("directed family %q at n=%d not weakly connected", f.Name, n)
		}
	}
}

func TestFamilyLookup(t *testing.T) {
	if _, err := FamilyByName("path"); err != nil {
		t.Fatal(err)
	}
	if _, err := FamilyByName("nope"); err == nil {
		t.Fatal("expected error for unknown family")
	}
	if _, err := DirectedFamilyByName("thm15"); err != nil {
		t.Fatal(err)
	}
	if _, err := DirectedFamilyByName("nope"); err == nil {
		t.Fatal("expected error for unknown directed family")
	}
	if len(FamilyNames()) < 10 {
		t.Fatalf("too few registered families: %v", FamilyNames())
	}
}

// Property: ConnectedER always yields connected graphs across p.
func TestQuickConnectedER(t *testing.T) {
	f := func(seed uint64, pRaw uint8) bool {
		r := rng.New(seed)
		n := 4 + r.Intn(30)
		p := float64(pRaw) / 255.0
		return ConnectedER(n, p, r).IsConnected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: Thm15 construction is strongly connected and has min out-degree
// >= n/2 - 1 for all even n.
func TestQuickThm15(t *testing.T) {
	f := func(raw uint8) bool {
		n := 4 + 2*int(raw%20)
		g := Thm15StrongLowerBound(n)
		for u := 0; u < n; u++ {
			if g.OutDegree(u) < n/2-1 {
				return false
			}
		}
		return g.IsStronglyConnected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
