package gen

import (
	"fmt"

	"gossipdisc/internal/graph"
)

// This file adds further standard workload families used by the ablation
// experiments and available through the CLI registry.

// Wheel returns the wheel graph: an (n-1)-cycle plus a hub (node 0)
// adjacent to every rim node. Requires n >= 4.
func Wheel(n int, backend ...graph.Backend) *graph.Undirected {
	if n < 4 {
		panic(fmt.Sprintf("gen: Wheel(%d) needs n >= 4", n))
	}
	g := graph.NewUndirectedOn(n, pick(backend))
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
		next := i + 1
		if next == n {
			next = 1
		}
		g.AddEdge(i, next)
	}
	return g
}

// Caterpillar returns a spine path of ceil(n/2) nodes with the remaining
// nodes attached as legs round-robin along the spine.
func Caterpillar(n int, backend ...graph.Backend) *graph.Undirected {
	g := graph.NewUndirectedOn(n, pick(backend))
	spine := (n + 1) / 2
	for i := 0; i+1 < spine; i++ {
		g.AddEdge(i, i+1)
	}
	for leg := spine; leg < n; leg++ {
		g.AddEdge(leg, (leg-spine)%spine)
	}
	return g
}

// KaryTree returns the complete k-ary tree on n nodes (node i's children
// are k·i+1 … k·i+k).
func KaryTree(n, k int, backend ...graph.Backend) *graph.Undirected {
	if k < 1 {
		panic(fmt.Sprintf("gen: KaryTree arity %d", k))
	}
	g := graph.NewUndirectedOn(n, pick(backend))
	for i := 1; i < n; i++ {
		g.AddEdge(i, (i-1)/k)
	}
	return g
}

// Circulant returns the circulant graph C_n(1, …, jumps): node i is
// adjacent to i±1, …, i±jumps (mod n). A simple constant-degree expander
// stand-in for the ablation sweeps.
func Circulant(n, jumps int, backend ...graph.Backend) *graph.Undirected {
	if jumps < 1 {
		panic(fmt.Sprintf("gen: Circulant jumps %d", jumps))
	}
	g := graph.NewUndirectedOn(n, pick(backend))
	for i := 0; i < n; i++ {
		for j := 1; j <= jumps; j++ {
			g.AddEdge(i, (i+j)%n)
		}
	}
	return g
}

// Broom returns a star of n/2 leaves whose center extends into a path of
// the remaining nodes — high-degree and deep-path features in one graph.
func Broom(n int, backend ...graph.Backend) *graph.Undirected {
	g := graph.NewUndirectedOn(n, pick(backend))
	half := n / 2
	for i := 1; i <= half; i++ {
		g.AddEdge(0, i)
	}
	prev := 0
	for i := half + 1; i < n; i++ {
		g.AddEdge(prev, i)
		prev = i
	}
	return g
}
