package gen

import (
	"fmt"
	"sort"

	"gossipdisc/internal/graph"
	"gossipdisc/internal/rng"
)

// Family is a named, parameterized generator of undirected workloads, used
// by the experiment sweeps. Generate must return a connected graph on
// (about) n nodes; families are free to round n to a feasible value (e.g.
// hypercubes round to powers of two) — callers read the actual size off the
// returned graph. The optional trailing backend selects the graph's
// row-storage backend (default dense); the generated graph is identical
// for every backend.
type Family struct {
	Name     string
	MinN     int
	Generate func(n int, r *rng.Rand, backend ...graph.Backend) *graph.Undirected
}

// DirectedFamily is the directed analogue of Family.
type DirectedFamily struct {
	Name     string
	MinN     int
	Generate func(n int, r *rng.Rand, backend ...graph.Backend) *graph.Directed
}

// UndirectedFamilies returns the registry of undirected workload families in
// a stable order. These are the sweep axes of experiments E1/E3/E9/E10.
func UndirectedFamilies() []Family {
	return []Family{
		{Name: "path", MinN: 2, Generate: func(n int, r *rng.Rand, b ...graph.Backend) *graph.Undirected { return Path(n, b...) }},
		{Name: "cycle", MinN: 3, Generate: func(n int, r *rng.Rand, b ...graph.Backend) *graph.Undirected { return Cycle(n, b...) }},
		{Name: "star", MinN: 2, Generate: func(n int, r *rng.Rand, b ...graph.Backend) *graph.Undirected { return Star(n, b...) }},
		{Name: "bintree", MinN: 2, Generate: func(n int, r *rng.Rand, b ...graph.Backend) *graph.Undirected { return BinaryTree(n, b...) }},
		{Name: "randtree", MinN: 2, Generate: RandomTree},
		{Name: "lollipop", MinN: 4, Generate: func(n int, r *rng.Rand, b ...graph.Backend) *graph.Undirected { return Lollipop(n, b...) }},
		{Name: "barbell", MinN: 4, Generate: func(n int, r *rng.Rand, b ...graph.Backend) *graph.Undirected { return Barbell(n, b...) }},
		{Name: "grid", MinN: 4, Generate: func(n int, r *rng.Rand, b ...graph.Backend) *graph.Undirected {
			side := intSqrt(n)
			return Grid(side, side, b...)
		}},
		{Name: "hypercube", MinN: 4, Generate: func(n int, r *rng.Rand, b ...graph.Backend) *graph.Undirected {
			d := 1
			for 1<<(d+1) <= n {
				d++
			}
			return Hypercube(d, b...)
		}},
		{Name: "er-sparse", MinN: 8, Generate: func(n int, r *rng.Rand, b ...graph.Backend) *graph.Undirected {
			return ConnectedER(n, 2.0/float64(n), r, b...)
		}},
		{Name: "prefattach", MinN: 4, Generate: func(n int, r *rng.Rand, b ...graph.Backend) *graph.Undirected {
			return PreferentialAttachment(n, 2, r, b...)
		}},
		{Name: "2clusters", MinN: 8, Generate: func(n int, r *rng.Rand, b ...graph.Backend) *graph.Undirected {
			return TwoClustersBridge(n, 4.0/float64(n), r, b...)
		}},
		{Name: "wheel", MinN: 4, Generate: func(n int, r *rng.Rand, b ...graph.Backend) *graph.Undirected { return Wheel(n, b...) }},
		{Name: "caterpillar", MinN: 2, Generate: func(n int, r *rng.Rand, b ...graph.Backend) *graph.Undirected { return Caterpillar(n, b...) }},
		{Name: "3arytree", MinN: 2, Generate: func(n int, r *rng.Rand, b ...graph.Backend) *graph.Undirected { return KaryTree(n, 3, b...) }},
		{Name: "circulant3", MinN: 4, Generate: func(n int, r *rng.Rand, b ...graph.Backend) *graph.Undirected { return Circulant(n, 3, b...) }},
		{Name: "broom", MinN: 4, Generate: func(n int, r *rng.Rand, b ...graph.Backend) *graph.Undirected { return Broom(n, b...) }},
	}
}

// FamilyByName returns the undirected family with the given name.
func FamilyByName(name string) (Family, error) {
	for _, f := range UndirectedFamilies() {
		if f.Name == name {
			return f, nil
		}
	}
	return Family{}, fmt.Errorf("gen: unknown undirected family %q (have %v)", name, FamilyNames())
}

// FamilyNames returns the registered undirected family names, sorted.
func FamilyNames() []string {
	fams := UndirectedFamilies()
	names := make([]string, len(fams))
	for i, f := range fams {
		names[i] = f.Name
	}
	sort.Strings(names)
	return names
}

// DirectedFamilies returns the registry of directed workload families.
func DirectedFamilies() []DirectedFamily {
	return []DirectedFamily{
		{Name: "dcycle", MinN: 2, Generate: func(n int, r *rng.Rand, b ...graph.Backend) *graph.Directed { return DirectedCycle(n, b...) }},
		{Name: "strong-random", MinN: 2, Generate: func(n int, r *rng.Rand, b ...graph.Backend) *graph.Directed {
			return RandomStronglyConnected(n, n/2, r, b...)
		}},
		{Name: "weak-random", MinN: 2, Generate: func(n int, r *rng.Rand, b ...graph.Backend) *graph.Directed {
			return RandomWeaklyConnected(n, n/4, r, b...)
		}},
		{Name: "thm14", MinN: 8, Generate: func(n int, r *rng.Rand, b ...graph.Backend) *graph.Directed {
			return Thm14WeakLowerBound(n-n%4, b...)
		}},
		{Name: "thm15", MinN: 4, Generate: func(n int, r *rng.Rand, b ...graph.Backend) *graph.Directed {
			return Thm15StrongLowerBound(n-n%2, b...)
		}},
	}
}

// DirectedFamilyByName returns the directed family with the given name.
func DirectedFamilyByName(name string) (DirectedFamily, error) {
	for _, f := range DirectedFamilies() {
		if f.Name == name {
			return f, nil
		}
	}
	var names []string
	for _, f := range DirectedFamilies() {
		names = append(names, f.Name)
	}
	sort.Strings(names)
	return DirectedFamily{}, fmt.Errorf("gen: unknown directed family %q (have %v)", name, names)
}

func intSqrt(n int) int {
	s := 1
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}
