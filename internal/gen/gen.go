// Package gen constructs the initial graphs ("workloads") that the paper's
// theorems quantify over: standard sparse families that stress the upper
// bounds (paths, cycles, trees, stars), dense families that stress the lower
// bounds (near-complete graphs), random families, and — in directed.go — the
// paper's explicit lower-bound constructions for Theorems 14 and 15.
//
// All generators are deterministic given a *rng.Rand; generators of fixed
// graphs take no generator argument.
//
// Every parameterized generator takes an optional trailing graph.Backend
// selecting the row-storage backend of the produced graph (default
// BackendDense). The generated edge set and adjacency insertion order are
// identical for every backend, so downstream simulations draw the same
// samples whichever backend is chosen.
package gen

import (
	"fmt"

	"gossipdisc/internal/graph"
	"gossipdisc/internal/rng"
)

// pick resolves the optional trailing backend argument of a generator.
func pick(backend []graph.Backend) graph.Backend {
	if len(backend) > 0 {
		return backend[0]
	}
	return graph.BackendDense
}

// Path returns the path 0–1–…–(n-1).
func Path(n int, backend ...graph.Backend) *graph.Undirected {
	g := graph.NewUndirectedOn(n, pick(backend))
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Cycle returns the n-cycle (n >= 3); for n < 3 it returns Path(n).
func Cycle(n int, backend ...graph.Backend) *graph.Undirected {
	g := Path(n, backend...)
	if n >= 3 {
		g.AddEdge(n-1, 0)
	}
	return g
}

// Star returns the star with center 0 and n-1 leaves.
func Star(n int, backend ...graph.Backend) *graph.Undirected {
	g := graph.NewUndirectedOn(n, pick(backend))
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int, backend ...graph.Backend) *graph.Undirected {
	g := graph.NewUndirectedOn(n, pick(backend))
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// CompleteBipartite returns K_{a,b} with parts {0..a-1} and {a..a+b-1}.
func CompleteBipartite(a, b int, backend ...graph.Backend) *graph.Undirected {
	g := graph.NewUndirectedOn(a+b, pick(backend))
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			g.AddEdge(i, a+j)
		}
	}
	return g
}

// BinaryTree returns the complete-ish binary tree on n nodes where node i's
// children are 2i+1 and 2i+2.
func BinaryTree(n int, backend ...graph.Backend) *graph.Undirected {
	g := graph.NewUndirectedOn(n, pick(backend))
	for i := 1; i < n; i++ {
		g.AddEdge(i, (i-1)/2)
	}
	return g
}

// RandomTree returns a uniformly random labeled tree on n nodes via a random
// attachment sequence (each new node attaches to a uniform existing node
// under a random node ordering — a random recursive tree on a random
// permutation; not Prüfer-uniform but an excellent sparse workload).
func RandomTree(n int, r *rng.Rand, backend ...graph.Backend) *graph.Undirected {
	g := graph.NewUndirectedOn(n, pick(backend))
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(perm[i], perm[r.Intn(i)])
	}
	return g
}

// Grid returns the rows×cols grid graph.
func Grid(rows, cols int, backend ...graph.Backend) *graph.Undirected {
	g := graph.NewUndirectedOn(rows*cols, pick(backend))
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// Hypercube returns the d-dimensional hypercube on 2^d nodes.
func Hypercube(d int, backend ...graph.Backend) *graph.Undirected {
	n := 1 << d
	g := graph.NewUndirectedOn(n, pick(backend))
	for u := 0; u < n; u++ {
		for b := 0; b < d; b++ {
			v := u ^ (1 << b)
			if u < v {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// Lollipop returns a clique on ceil(n/2) nodes with a path of the remaining
// nodes attached to clique node 0 — the classic worst case for random-walk
// style processes.
func Lollipop(n int, backend ...graph.Backend) *graph.Undirected {
	k := (n + 1) / 2
	g := graph.NewUndirectedOn(n, pick(backend))
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.AddEdge(i, j)
		}
	}
	prev := 0
	for i := k; i < n; i++ {
		g.AddEdge(prev, i)
		prev = i
	}
	return g
}

// Barbell returns two cliques of size n/2 joined by a single bridge edge
// (n >= 2). For odd n the second clique gets the extra node.
func Barbell(n int, backend ...graph.Backend) *graph.Undirected {
	k := n / 2
	g := graph.NewUndirectedOn(n, pick(backend))
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.AddEdge(i, j)
		}
	}
	for i := k; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	if k >= 1 && k < n {
		g.AddEdge(0, k)
	}
	return g
}

// ConnectedER returns an Erdős–Rényi G(n, p) sample conditioned to be
// connected: the sample is patched by linking each non-root component to a
// uniform node of the giant via a single extra edge. For p above the
// connectivity threshold the patch is almost always empty.
func ConnectedER(n int, p float64, r *rng.Rand, backend ...graph.Backend) *graph.Undirected {
	g := graph.NewUndirectedOn(n, pick(backend))
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Bernoulli(p) {
				g.AddEdge(i, j)
			}
		}
	}
	comps := g.ConnectedComponents()
	for _, c := range comps[1:] {
		u := c[r.Intn(len(c))]
		v := comps[0][r.Intn(len(comps[0]))]
		g.AddEdge(u, v)
	}
	return g
}

// RandomRegular returns a random d-regular simple graph on n nodes via the
// pairing (configuration) model with restarts. n*d must be even and d < n.
func RandomRegular(n, d int, r *rng.Rand, backend ...graph.Backend) *graph.Undirected {
	if n*d%2 != 0 {
		panic(fmt.Sprintf("gen: RandomRegular(%d, %d): n*d must be even", n, d))
	}
	if d >= n {
		panic(fmt.Sprintf("gen: RandomRegular(%d, %d): need d < n", n, d))
	}
	if d == 0 {
		return graph.NewUndirectedOn(n, pick(backend))
	}
	// The rejection rate of the pairing model explodes as d approaches n;
	// dense regular graphs are generated as complements of sparse ones
	// (the complement of a simple d'-regular graph is (n-1-d')-regular, and
	// n(n-1-d) keeps the required parity because n(n-1) is even).
	if d > (n-1)/2 {
		return complement(RandomRegular(n, n-1-d, r, backend...), backend...)
	}
	for attempt := 0; ; attempt++ {
		if g, ok := tryPairing(n, d, r, backend...); ok {
			return g
		}
		if attempt > 10000 {
			panic(fmt.Sprintf("gen: RandomRegular(%d, %d) failed to converge", n, d))
		}
	}
}

// complement returns the graph on the same nodes whose edges are exactly
// the non-edges of g.
func complement(g *graph.Undirected, backend ...graph.Backend) *graph.Undirected {
	n := g.N()
	c := graph.NewUndirectedOn(n, pick(backend))
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) {
				c.AddEdge(u, v)
			}
		}
	}
	return c
}

func tryPairing(n, d int, r *rng.Rand, backend ...graph.Backend) (*graph.Undirected, bool) {
	stubs := make([]int, 0, n*d)
	for u := 0; u < n; u++ {
		for k := 0; k < d; k++ {
			stubs = append(stubs, u)
		}
	}
	r.Shuffle(stubs)
	g := graph.NewUndirectedOn(n, pick(backend))
	for i := 0; i < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v || g.HasEdge(u, v) {
			return nil, false // reject and restart for exact uniformity-ish
		}
		g.AddEdge(u, v)
	}
	return g, true
}

// PreferentialAttachment returns a Barabási–Albert style graph: starting
// from a clique on m+1 nodes, each new node attaches to m distinct existing
// nodes chosen with probability proportional to degree.
func PreferentialAttachment(n, m int, r *rng.Rand, backend ...graph.Backend) *graph.Undirected {
	if m < 1 || n < m+1 {
		panic(fmt.Sprintf("gen: PreferentialAttachment(%d, %d) invalid", n, m))
	}
	g := graph.NewUndirectedOn(n, pick(backend))
	// Degree-proportional sampling via the repeated-endpoints trick.
	var endpoints []int
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			g.AddEdge(i, j)
			endpoints = append(endpoints, i, j)
		}
	}
	for u := m + 1; u < n; u++ {
		added := 0
		for added < m {
			v := endpoints[r.Intn(len(endpoints))]
			if g.AddEdge(u, v) {
				endpoints = append(endpoints, u, v)
				added++
			}
		}
	}
	return g
}

// TwoClustersBridge returns two ConnectedER(n/2, p) clusters joined by one
// bridge edge — the social-network motivation workload (two communities).
func TwoClustersBridge(n int, p float64, r *rng.Rand, backend ...graph.Backend) *graph.Undirected {
	a := n / 2
	b := n - a
	g := graph.NewUndirectedOn(n, pick(backend))
	copyIn := func(h *graph.Undirected, off int) {
		for _, e := range h.Edges() {
			g.AddEdge(e.U+off, e.V+off)
		}
	}
	copyIn(ConnectedER(a, p, r, backend...), 0)
	copyIn(ConnectedER(b, p, r, backend...), a)
	if a >= 1 && b >= 1 {
		g.AddEdge(0, a)
	}
	return g
}

// NearComplete returns K_n with k distinct edges removed, chosen uniformly
// at random, conditioned on the result staying connected (k must satisfy
// k <= n(n-1)/2 - (n-1) so a connected graph exists).
func NearComplete(n, k int, r *rng.Rand, backend ...graph.Backend) *graph.Undirected {
	maxRemovable := n*(n-1)/2 - (n - 1)
	if k < 0 || k > maxRemovable {
		panic(fmt.Sprintf("gen: NearComplete(%d, %d): k out of range [0, %d]", n, k, maxRemovable))
	}
	for {
		g := buildWithoutEdges(n, k, r, backend...)
		if g.IsConnected() {
			return g
		}
	}
}

func buildWithoutEdges(n, k int, r *rng.Rand, backend ...graph.Backend) *graph.Undirected {
	// Choose k distinct pairs to omit.
	type pair struct{ u, v int }
	omit := map[pair]bool{}
	for len(omit) < k {
		u := r.Intn(n)
		v := r.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		omit[pair{u, v}] = true
	}
	g := graph.NewUndirectedOn(n, pick(backend))
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !omit[pair{u, v}] {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// Fig1cGraph returns the 4-edge "paw" of Figure 1(c): a triangle {0,1,2}
// with a pendant node 3 attached to node 2.
//
// The paper's caption — "the expected convergence time for the 4-edge graph
// exceeds that for the 3-edge subgraph" — is realized by comparing this
// graph against its induced 3-edge subgraph Fig1cSubgraph (the bare
// triangle): the triangle is already complete, so its convergence time is
// zero, while the paw's exact expected time under the synchronous push
// kernel is 4.78125 rounds (internal/markov computes this exactly). Adding
// one node and one edge strictly *increased* the convergence time.
func Fig1cGraph() *graph.Undirected {
	g := graph.NewUndirected(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	return g
}

// Fig1cSubgraph returns the 3-edge subgraph of Fig1cGraph induced by the
// triangle nodes {0,1,2}.
func Fig1cSubgraph() *graph.Undirected {
	g := graph.NewUndirected(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	return g
}

// NonMonotonePair returns the exhaustively verified *spanning* non-monotone
// pair on 4 nodes: G = K₄ minus the edge {2,3} (5 edges) and H = G minus
// the edge {0,1} (the 4-cycle 0–2–1–3). Both are connected and span the
// same nodes, H ⊂ G, yet under the synchronous push kernel
//
//	E[T(G)] = 2.53125  >  E[T(H)] ≈ 2.0792
//
// (exact values from internal/markov). An exhaustive sweep over all
// connected 4-node graph/one-edge-deleted-subgraph pairs shows this is the
// unique such pair up to isomorphism — the minimal hard witness of the
// paper's non-monotonicity phenomenon.
func NonMonotonePair() (g, h *graph.Undirected) {
	g = graph.NewUndirected(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	h = graph.NewUndirected(4)
	for _, e := range g.Edges() {
		if !(e.U == 0 && e.V == 1) {
			h.AddEdge(e.U, e.V)
		}
	}
	return g, h
}
