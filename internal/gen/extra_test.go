package gen

import "testing"

func TestWheel(t *testing.T) {
	g := Wheel(8)
	if g.M() != 2*(8-1) {
		t.Fatalf("wheel edges %d want %d", g.M(), 2*7)
	}
	if g.Degree(0) != 7 {
		t.Fatalf("hub degree %d", g.Degree(0))
	}
	for i := 1; i < 8; i++ {
		if g.Degree(i) != 3 {
			t.Fatalf("rim node %d degree %d", i, g.Degree(i))
		}
	}
	if g.Diameter() != 2 {
		t.Fatalf("wheel diameter %d", g.Diameter())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Wheel(3) should panic")
		}
	}()
	Wheel(3)
}

func TestCaterpillar(t *testing.T) {
	for _, n := range []int{2, 5, 10, 17} {
		g := Caterpillar(n)
		if g.M() != n-1 {
			t.Fatalf("caterpillar(%d) edges %d", n, g.M())
		}
		if !g.IsConnected() {
			t.Fatalf("caterpillar(%d) disconnected", n)
		}
	}
	// Legs attach to the spine: node 5 (first leg of n=10, spine 0..4)
	// attaches to 0.
	g := Caterpillar(10)
	if !g.HasEdge(5, 0) || !g.HasEdge(6, 1) {
		t.Fatal("caterpillar legs misattached")
	}
}

func TestKaryTree(t *testing.T) {
	g := KaryTree(13, 3) // complete 3-ary tree of depth 2
	if g.M() != 12 || !g.IsConnected() {
		t.Fatalf("3-ary tree wrong: %v", g)
	}
	if g.Degree(0) != 3 {
		t.Fatalf("root degree %d", g.Degree(0))
	}
	if !g.HasEdge(1, 4) || !g.HasEdge(1, 5) || !g.HasEdge(1, 6) {
		t.Fatal("children of node 1 wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("KaryTree(5, 0) should panic")
		}
	}()
	KaryTree(5, 0)
}

func TestCirculant(t *testing.T) {
	g := Circulant(12, 3)
	for i := 0; i < 12; i++ {
		if g.Degree(i) != 6 {
			t.Fatalf("circulant degree %d at %d", g.Degree(i), i)
		}
	}
	if !g.IsConnected() {
		t.Fatal("circulant disconnected")
	}
	if !g.HasEdge(0, 3) || g.HasEdge(0, 4) {
		t.Fatal("circulant jumps wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Circulant(5, 0) should panic")
		}
	}()
	Circulant(5, 0)
}

func TestCirculantSmallWraps(t *testing.T) {
	// Jumps that wrap past n must not create self-loops or duplicates.
	g := Circulant(4, 3)
	g.CheckInvariants()
	if !g.IsComplete() {
		t.Fatalf("C4(1,2,3) should be K4: %v", g)
	}
}

func TestBroom(t *testing.T) {
	g := Broom(12)
	if !g.IsConnected() || g.M() != 11 {
		t.Fatalf("broom wrong: %v", g)
	}
	if g.Degree(0) != 7 { // 6 leaves + first path node
		t.Fatalf("broom center degree %d", g.Degree(0))
	}
}
