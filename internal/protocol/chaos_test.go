package protocol

import (
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"gossipdisc/internal/gen"
	"gossipdisc/internal/netsim"
	"gossipdisc/internal/sim"
)

var updateGoldens = flag.Bool("update", false, "rewrite golden files from current behavior")

// clusterDigest runs one wire-level discovery to completion (or maxRounds)
// and folds everything observable — round count, convergence, the full
// traffic counters, and every final contact list — into one line. Two runs
// are behaviorally identical iff their digests match.
func clusterDigest(proto Protocol, n int, maxRounds int, cfg netsim.Config) string {
	cl := NewCluster(gen.Cycle(n), proto, cfg)
	defer cl.Close()
	rounds, done := cl.Run(maxRounds)
	h := fnv.New64a()
	for u := 0; u < n; u++ {
		contacts := cl.Contacts(u).Slice()
		sort.Ints(contacts)
		fmt.Fprintf(h, "%d:%v;", u, contacts)
	}
	st := cl.Net.Stats()
	return fmt.Sprintf(
		"%s n=%d: rounds=%d done=%v sent=%d dropped=%d delivered=%d idbits=%d contacts=%016x",
		proto, n, rounds, done, st.Sent, st.Dropped, st.Delivered, st.IDBits, h.Sum64())
}

// TestSeedCompatGolden pins the zero-impairment wire byte-for-byte against
// goldens recorded on the pre-scenario netsim (PR 6 seed state): a Network
// with no Scenario — including the legacy DropProb coin — must replay the
// exact executions the goroutine-per-node seed simulator produced.
func TestSeedCompatGolden(t *testing.T) {
	var lines []string
	for _, c := range []struct {
		proto Protocol
		seed  uint64
		drop  float64
	}{
		{ProtoPush, 11, 0},
		{ProtoPull, 12, 0},
		{ProtoPush, 13, 0.25},
		{ProtoPull, 14, 0.25},
	} {
		lines = append(lines, clusterDigest(c.proto, 32, sim.DefaultMaxRounds(32), netsim.Config{
			Seed:     c.seed,
			DropProb: c.drop,
		}))
	}
	got := strings.Join(lines, "\n") + "\n"
	compareGolden(t, "seedcompat.golden", got)
}

// loadScenario reads a canned scenario from testdata and validates it for n.
func loadScenario(t *testing.T, name string, n int) *netsim.Scenario {
	t.Helper()
	scn, err := netsim.LoadScenario(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	if err := scn.Validate(n); err != nil {
		t.Fatal(err)
	}
	return scn
}

// TestChaosScenarioGoldens runs the two canned chaos scenarios — a
// partition that heals and an asymmetric (NAT-like) reachability phase —
// and diffs the complete run digests against committed goldens: any drift
// in the impairment pipeline's draws, routing, or delivery order shows up
// as a digest change.
func TestChaosScenarioGoldens(t *testing.T) {
	const n = 32
	var lines []string
	for _, file := range []string{"scenario_partition_heal.json", "scenario_asymmetric.json"} {
		scn := loadScenario(t, file, n)
		for _, c := range []struct {
			proto Protocol
			seed  uint64
		}{{ProtoPush, 41}, {ProtoPull, 42}} {
			lines = append(lines, scn.Name+" "+clusterDigest(c.proto, n, sim.DefaultMaxRounds(n), netsim.Config{
				Seed:     c.seed,
				Scenario: scn,
			}))
		}
	}
	got := strings.Join(lines, "\n") + "\n"
	compareGolden(t, "scenarios.golden", got)
}

// TestChaosReplayByteIdentical is the determinism contract at the protocol
// level: the same (seed, scenario) replays the partition-heal and the
// asymmetric scenarios — and a crash-spike-mid-partition scenario built in
// Go — to byte-identical executions.
func TestChaosReplayByteIdentical(t *testing.T) {
	const n = 32
	crashSpike := &netsim.Scenario{
		Name: "crash-spike-mid-partition",
		Phases: []netsim.Phase{
			{Until: 30, Partition: [][]int{{0, 1, 2, 3, 4, 5, 6, 7}}},
			{From: 10, Until: 20, Crash: []int{2, 3, 19}},
			{All: &netsim.Impairment{Loss: 0.15, Jitter: 1, Duplicate: 0.1, Reorder: 0.2}},
		},
	}
	scenarios := []*netsim.Scenario{
		loadScenario(t, "scenario_partition_heal.json", n),
		loadScenario(t, "scenario_asymmetric.json", n),
		crashSpike,
	}
	for _, scn := range scenarios {
		for _, proto := range []Protocol{ProtoPush, ProtoPull} {
			cfg := netsim.Config{Seed: 77, Scenario: scn}
			d1 := clusterDigest(proto, n, sim.DefaultMaxRounds(n), cfg)
			d2 := clusterDigest(proto, n, sim.DefaultMaxRounds(n), cfg)
			if d1 != d2 {
				t.Errorf("%s %s: replay diverged:\n%s\n%s", scn.Name, proto, d1, d2)
			}
		}
	}
}

// TestChaosCrashHooks checks the crash/restart plumbing end to end: a
// scenario outage fires the handlers' NodeHealth hooks, the node keeps its
// contacts across the outage, and discovery still completes after restart.
func TestChaosCrashHooks(t *testing.T) {
	const n = 16
	scn := &netsim.Scenario{Phases: []netsim.Phase{
		{From: 3, Until: 8, Crash: []int{4, 5}},
	}}
	for _, proto := range []Protocol{ProtoPush, ProtoPull} {
		cl := NewCluster(gen.Cycle(n), proto, netsim.Config{Seed: 51, Scenario: scn})
		cl.Net.Run(cl.Handlers, 2, nil)
		before := cl.Contacts(4).Len()
		cl.Net.Run(cl.Handlers, 4, nil) // rounds 3-6: mid-outage
		h := cl.Health(4)
		if !h.Down || h.Crashes != 1 || h.LastCrash != 3 {
			t.Fatalf("%s mid-outage health %+v", proto, h)
		}
		if cl.Contacts(4).Len() != before {
			t.Fatalf("%s crashed node's contacts changed during outage", proto)
		}
		rounds, done := cl.Run(sim.DefaultMaxRounds(n))
		if !done {
			t.Fatalf("%s did not re-converge after restart (%d rounds)", proto, rounds)
		}
		if h.Down || h.LastRestart != 9 {
			t.Fatalf("%s post-restart health %+v", proto, h)
		}
		if cl.Health(0).Crashes != 0 {
			t.Fatalf("%s healthy node recorded a crash", proto)
		}
		cl.Close()
	}
}

// TestPullLossMidHandshake pins the pull pipeline's behavior when a wire
// fault interrupts the three-message handshake. The pipeline is stateless
// by design — a node issues a fresh PULL-REQ every round no matter what
// happened to the last one — so a dropped PULL-REQ or PULL-REPLY must cost
// exactly the lost walk: no stall, no pending-handshake state, and a fresh
// request the very next round.
func TestPullLossMidHandshake(t *testing.T) {
	const n = 8
	reqCount := func(st netsim.Stats) int64 { return st.Sent }

	// (a) Total blackout: nothing is delivered for 10 rounds, yet every
	// node keeps issuing exactly one PULL-REQ per round (no stall, no
	// retry amplification) and no contact list changes (no leaked state).
	blackout := &netsim.Scenario{Phases: []netsim.Phase{
		{Until: 10, All: &netsim.Impairment{Loss: 1}},
	}}
	cl := NewCluster(gen.Cycle(n), ProtoPull, netsim.Config{Seed: 61, Scenario: blackout})
	before := make([]int, n)
	for u := 0; u < n; u++ {
		before[u] = cl.Contacts(u).Len()
	}
	cl.Net.Run(cl.Handlers, 10, nil)
	st := cl.Net.Stats()
	if got, want := reqCount(st), int64(10*n); got != want {
		t.Fatalf("blackout: %d messages sent, want exactly one PULL-REQ per node per round = %d", got, want)
	}
	if st.Delivered != 0 {
		t.Fatalf("blackout delivered %d", st.Delivered)
	}
	for u := 0; u < n; u++ {
		if cl.Contacts(u).Len() != before[u] {
			t.Fatalf("node %d's contacts changed under total loss", u)
		}
	}
	// The wire heals: the pipeline resumes from its fresh per-round
	// requests and discovery completes.
	rounds, done := cl.Run(sim.DefaultMaxRounds(n))
	if !done {
		t.Fatalf("pull stalled after blackout healed (%d rounds)", rounds)
	}
	cl.Close()

	// (b) Replies severed mid-handshake: node 0's inbound links are dead,
	// so its PULL-REQs arrive and are served, but every PULL-REPLY (and
	// HELLO) back to it is lost. Node 0 must keep learning nothing while
	// still requesting every round, then catch up once healed.
	deaf := &netsim.Scenario{Phases: []netsim.Phase{
		{Until: 12, Links: []netsim.LinkRule{{To: netsim.Node(0), Impairment: netsim.Impairment{Loss: 1}}}},
	}}
	cl = NewCluster(gen.Cycle(n), ProtoPull, netsim.Config{Seed: 62, Scenario: deaf})
	deg0 := cl.Contacts(0).Len()
	cl.Net.Run(cl.Handlers, 12, nil)
	if cl.Contacts(0).Len() != deg0 {
		t.Fatal("node 0 learned contacts despite severed replies")
	}
	rounds, done = cl.Run(sim.DefaultMaxRounds(n))
	if !done {
		t.Fatalf("pull stalled after reply loss healed (%d rounds)", rounds)
	}
	cl.Close()
}

func compareGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGoldens {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("digest drifted from %s:\n got:\n%s\nwant:\n%s", path, got, want)
	}
}
