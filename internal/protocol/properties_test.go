package protocol

import (
	"testing"
	"testing/quick"

	"gossipdisc/internal/gen"
	"gossipdisc/internal/netsim"
	"gossipdisc/internal/rng"
)

// Property: contact knowledge only grows, never contains self or
// out-of-range IDs, and the knowledge graph's edge count is monotone.
func TestQuickKnowledgeMonotoneAndValid(t *testing.T) {
	f := func(seed uint64, usePull bool) bool {
		r := rng.New(seed)
		n := 4 + int(seed%8)
		proto := ProtoPush
		if usePull {
			proto = ProtoPull
		}
		cl := NewCluster(gen.RandomTree(n, r), proto, netsim.Config{Seed: seed})
		prevCounts := make([]int, n)
		prevEdges := 0
		for round := 0; round < 30; round++ {
			cl.Net.Round(cl.Handlers)
			for u := 0; u < n; u++ {
				c := cl.Contacts(u)
				if c.Len() < prevCounts[u] {
					return false // knowledge shrank
				}
				prevCounts[u] = c.Len()
				if c.Has(u) {
					return false // learned itself
				}
				for _, id := range c.Slice() {
					if id < 0 || id >= n {
						return false // forged identity
					}
				}
			}
			m := cl.KnowledgeGraph().M()
			if m < prevEdges {
				return false
			}
			prevEdges = m
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: under a lossless network, a contact learned by anyone was a
// legitimate member (payloads always within range) and push symmetry means
// the final complete state is reached jointly.
func TestQuickPushCompletionIsMutual(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 4 + int(seed%6)
		cl := NewCluster(gen.Cycle(n), ProtoPush, netsim.Config{Seed: seed})
		_ = r
		maxRounds := 20000
		rounds, done := cl.Run(maxRounds)
		if !done || rounds <= 0 {
			return false
		}
		// All nodes report full knowledge simultaneously at the stop round.
		for u := 0; u < n; u++ {
			if cl.Contacts(u).Len() != n-1 {
				return false
			}
		}
		return cl.KnowledgeGraph().IsComplete()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: dropping every message freezes knowledge at the initial state.
func TestTotalLossFreezesKnowledge(t *testing.T) {
	g := gen.Cycle(10)
	cl := NewCluster(g, ProtoPull, netsim.Config{Seed: 3, DropProb: 1})
	for i := 0; i < 50; i++ {
		cl.Net.Round(cl.Handlers)
	}
	if !cl.KnowledgeGraph().Equal(g) {
		t.Fatal("knowledge changed despite total message loss")
	}
	st := cl.Net.Stats()
	if st.Delivered != 0 || st.Dropped != st.Sent {
		t.Fatalf("loss accounting wrong: %+v", st)
	}
}

// The pull protocol must still serve requests for nodes it has just
// learned about (no stale-state deadlock): exercised by a high-degree hub.
func TestPullHubServesAllRequests(t *testing.T) {
	cl := NewCluster(gen.Star(16), ProtoPull, netsim.Config{Seed: 4})
	rounds, done := cl.Run(100000)
	if !done {
		t.Fatalf("star pull did not converge in %d rounds", rounds)
	}
}
