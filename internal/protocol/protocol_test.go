package protocol

import (
	"testing"

	"gossipdisc/internal/core"
	"gossipdisc/internal/gen"
	"gossipdisc/internal/graph"
	"gossipdisc/internal/netsim"
	"gossipdisc/internal/rng"
	"gossipdisc/internal/sim"
)

func TestContactsBasics(t *testing.T) {
	c := NewContacts(2, []int{0, 1})
	if c.Len() != 2 || !c.Has(0) || !c.Has(1) || c.Has(2) {
		t.Fatalf("contacts wrong: %v", c.Slice())
	}
	if c.Add(2) {
		t.Fatal("added self")
	}
	if c.Add(0) {
		t.Fatal("added duplicate")
	}
	if !c.Add(5) || c.Len() != 3 {
		t.Fatal("failed to add new contact")
	}
	// Slice returns a copy.
	s := c.Slice()
	s[0] = 99
	if c.list[0] == 99 {
		t.Fatal("Slice aliases internal storage")
	}
}

func TestContactsRandomEmpty(t *testing.T) {
	c := NewContacts(0, nil)
	if c.Random(rng.New(1)) != -1 {
		t.Fatal("empty Random should be -1")
	}
}

func TestPushProtocolDiscoversPath(t *testing.T) {
	g := gen.Path(12)
	cl := NewCluster(g, ProtoPush, netsim.Config{Seed: 1})
	rounds, done := cl.Run(sim.DefaultMaxRounds(12))
	if !done {
		t.Fatalf("push protocol did not converge in %d rounds", rounds)
	}
	if !cl.KnowledgeGraph().IsComplete() {
		t.Fatal("knowledge graph not complete")
	}
}

func TestPullProtocolDiscoversPath(t *testing.T) {
	g := gen.Path(12)
	cl := NewCluster(g, ProtoPull, netsim.Config{Seed: 2})
	rounds, done := cl.Run(sim.DefaultMaxRounds(12))
	if !done {
		t.Fatalf("pull protocol did not converge in %d rounds", rounds)
	}
	if !cl.KnowledgeGraph().IsComplete() {
		t.Fatal("knowledge graph not complete")
	}
}

func TestPushKnowledgeStaysSymmetric(t *testing.T) {
	// Push introductions are symmetric (v learns w and w learns v), so in
	// a lossless network knowledge stays mutual.
	g := gen.Cycle(8)
	cl := NewCluster(g, ProtoPush, netsim.Config{Seed: 3})
	for i := 0; i < 50; i++ {
		cl.Net.Round(cl.Handlers)
		// Pending in-flight messages may break symmetry transiently; check
		// only that completed knowledge is consistent after the run.
	}
	kg := cl.KnowledgeGraph()
	kg.CheckInvariants()
}

func TestProtocolMessagesAreSingleID(t *testing.T) {
	// Every message carries at most one ID: total ID bits <= messages × ⌈lg n⌉.
	g := gen.Path(10)
	cl := NewCluster(g, ProtoPush, netsim.Config{Seed: 4})
	cl.Run(2000)
	s := cl.Net.Stats()
	if s.IDBits > s.Sent*int64(cl.Net.IDBits()) {
		t.Fatalf("some message carried more than one ID: %+v", s)
	}
	if s.Sent == 0 {
		t.Fatal("no traffic")
	}
}

func TestPushProtocolMatchesCentralizedSim(t *testing.T) {
	if testing.Short() {
		t.Skip("distribution comparison is slow")
	}
	// The message-level push protocol is the synchronous push process with
	// a one-round delivery delay, so its mean convergence time should be
	// within a couple of rounds of the centralized simulator's mean.
	const trials = 60
	const n = 16
	protoMean := 0.0
	for i := 0; i < trials; i++ {
		cl := NewCluster(gen.Cycle(n), ProtoPush, netsim.Config{Seed: uint64(1000 + i)})
		rounds, done := cl.Run(sim.DefaultMaxRounds(n))
		if !done {
			t.Fatal("protocol trial did not converge")
		}
		protoMean += float64(rounds)
	}
	protoMean /= trials

	results := sim.Trials(trials, 99, func(trial int, r *rng.Rand) *graph.Undirected {
		return gen.Cycle(n)
	}, core.Push{}, sim.Config{})
	simMean := 0.0
	for _, r := range results {
		simMean += float64(r.Rounds)
	}
	simMean /= trials

	// Allow generous sampling noise plus the pipeline delay.
	lo, hi := simMean*0.6, simMean*1.6+3
	if protoMean < lo || protoMean > hi {
		t.Fatalf("protocol mean %.1f outside [%.1f, %.1f] around sim mean %.1f",
			protoMean, lo, hi, simMean)
	}
}

func TestPullProtocolWithDropsStillConverges(t *testing.T) {
	g := gen.Path(10)
	cl := NewCluster(g, ProtoPull, netsim.Config{Seed: 5, DropProb: 0.3})
	rounds, done := cl.Run(sim.DefaultMaxRounds(10) * 2)
	if !done {
		t.Fatalf("lossy pull did not converge in %d rounds", rounds)
	}
	if cl.Net.Stats().Dropped == 0 {
		t.Fatal("no drops recorded at DropProb=0.3")
	}
}

func TestClusterContactsAccessor(t *testing.T) {
	g := gen.Star(5)
	cl := NewCluster(g, ProtoPush, netsim.Config{Seed: 6})
	if cl.Contacts(0).Len() != 4 {
		t.Fatalf("center contacts %d", cl.Contacts(0).Len())
	}
	if cl.Contacts(1).Len() != 1 {
		t.Fatalf("leaf contacts %d", cl.Contacts(1).Len())
	}
}

func TestAllDiscoveredOnCompleteStart(t *testing.T) {
	cl := NewCluster(gen.Complete(4), ProtoPush, netsim.Config{Seed: 7})
	if !cl.AllDiscovered() {
		t.Fatal("complete start not discovered")
	}
}

func TestProtocolString(t *testing.T) {
	if ProtoPush.String() != "push" || ProtoPull.String() != "pull" {
		t.Fatal("protocol strings wrong")
	}
}

func TestKnowledgeGraphMirrorsInitialGraph(t *testing.T) {
	g := gen.RandomTree(20, rng.New(8))
	cl := NewCluster(g, ProtoPull, netsim.Config{Seed: 9})
	if !cl.KnowledgeGraph().Equal(g) {
		t.Fatal("initial knowledge graph differs from seed graph")
	}
}

func TestDeterministicClusterRuns(t *testing.T) {
	run := func() (int, int64) {
		cl := NewCluster(gen.Path(10), ProtoPull, netsim.Config{Seed: 11})
		rounds, _ := cl.Run(10000)
		return rounds, cl.Net.Stats().Sent
	}
	r1, s1 := run()
	r2, s2 := run()
	if r1 != r2 || s1 != s2 {
		t.Fatalf("cluster runs non-deterministic: (%d,%d) vs (%d,%d)", r1, s1, r2, s2)
	}
}
