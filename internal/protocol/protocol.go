// Package protocol realizes the paper's discovery processes as genuine
// distributed message-passing protocols on the netsim substrate, proving
// the claim that both processes run with O(log n)-bit messages and
// constant amortized work per node per round.
//
// Each node holds only its own contact list (the IDs it has discovered);
// there is no global graph object. The union of the contact lists *is* the
// evolving graph, and the tests in this package check that the
// protocol-level executions converge with round counts distributionally
// consistent with the centralized simulator.
//
//   - Push: node u picks contacts v, w uniformly at random (with
//     replacement) from its list and sends INTRODUCE(w) to v and
//     INTRODUCE(v) to w. Recipients add the payload to their lists.
//     One process round = one message round.
//   - Pull: node u sends PULL-REQ to a uniform contact v; v replies
//     PULL-REPLY(w) with w uniform over v's list; u adds w and sends
//     HELLO to w, which adds u. One process round spans three message
//     rounds, pipelined: a node issues a fresh PULL-REQ every round.
package protocol

import (
	"gossipdisc/internal/graph"
	"gossipdisc/internal/netsim"
	"gossipdisc/internal/rng"
)

// Contacts is a node's local contact list: a slice for O(1) uniform
// sampling plus a membership set. The node's own ID is never a contact.
type Contacts struct {
	self  int
	list  []int
	known map[int]bool
}

// NewContacts returns a contact list for node self, seeded with neighbors.
func NewContacts(self int, neighbors []int) *Contacts {
	c := &Contacts{self: self, known: make(map[int]bool, len(neighbors))}
	for _, v := range neighbors {
		c.Add(v)
	}
	return c
}

// Add inserts id (ignoring self and duplicates) and reports whether it was
// new.
func (c *Contacts) Add(id int) bool {
	if id == c.self || c.known[id] {
		return false
	}
	c.known[id] = true
	c.list = append(c.list, id)
	return true
}

// Len returns the number of known contacts.
func (c *Contacts) Len() int { return len(c.list) }

// Random returns a uniform contact, or -1 if the list is empty.
func (c *Contacts) Random(r *rng.Rand) int {
	if len(c.list) == 0 {
		return -1
	}
	return c.list[r.Intn(len(c.list))]
}

// Has reports whether id is a known contact.
func (c *Contacts) Has(id int) bool { return c.known[id] }

// Slice returns a copy of the contact list.
func (c *Contacts) Slice() []int { return append([]int(nil), c.list...) }

// NodeHealth tracks a node's scenario churn state: both protocol handlers
// embed it to implement netsim.CrashAware. Contact lists survive an outage
// (a restart keeps durable state); the counters let tests and experiments
// observe the churn a scenario inflicted.
type NodeHealth struct {
	// Down reports whether the node is currently crashed.
	Down bool
	// Crashes counts how many outages the node has suffered.
	Crashes int
	// LastCrash and LastRestart are the rounds of the most recent
	// transitions (0 = never).
	LastCrash, LastRestart int
}

// Crashed implements netsim.CrashAware.
func (h *NodeHealth) Crashed(round int) {
	h.Down = true
	h.Crashes++
	h.LastCrash = round
}

// Restarted implements netsim.CrashAware.
func (h *NodeHealth) Restarted(round int) {
	h.Down = false
	h.LastRestart = round
}

// PushNode is the per-node handler of the push (triangulation) protocol.
type PushNode struct {
	Contacts *Contacts
	NodeHealth
}

// HandleRound implements netsim.Handler.
func (p *PushNode) HandleRound(round int, inbox []netsim.Message, r *rng.Rand) []netsim.Message {
	for _, m := range inbox {
		if m.Kind == netsim.KindIntroduce && m.Payload >= 0 {
			p.Contacts.Add(m.Payload)
		}
	}
	n := p.Contacts.Len()
	if n == 0 {
		return nil
	}
	// Two independent uniform picks, with replacement, per the paper.
	v := p.Contacts.list[r.Intn(n)]
	w := p.Contacts.list[r.Intn(n)]
	if v == w {
		return nil
	}
	return []netsim.Message{
		{From: p.Contacts.self, To: v, Kind: netsim.KindIntroduce, Payload: w},
		{From: p.Contacts.self, To: w, Kind: netsim.KindIntroduce, Payload: v},
	}
}

// PullNode is the per-node handler of the pull (two-hop walk) protocol.
// Requests, replies and hellos are pipelined: the node issues a new
// PULL-REQ every round while serving whatever arrived. The pipeline keeps
// no pending-handshake state, so a PULL-REQ or PULL-REPLY lost on the wire
// costs exactly that round's walk: the next round's fresh request is the
// retry (pinned by TestPullLossMidHandshake).
type PullNode struct {
	Contacts *Contacts
	NodeHealth
}

// HandleRound implements netsim.Handler.
func (p *PullNode) HandleRound(round int, inbox []netsim.Message, r *rng.Rand) []netsim.Message {
	self := p.Contacts.self
	var out []netsim.Message
	for _, m := range inbox {
		switch m.Kind {
		case netsim.KindPullRequest:
			// Serve: reply with a uniform contact (possibly the requester
			// itself, matching the process where w == u yields nothing).
			if w := p.Contacts.Random(r); w >= 0 {
				out = append(out, netsim.Message{
					From: self, To: m.From, Kind: netsim.KindPullReply, Payload: w,
				})
			}
		case netsim.KindPullReply:
			if m.Payload >= 0 && m.Payload != self && p.Contacts.Add(m.Payload) {
				out = append(out, netsim.Message{
					From: self, To: m.Payload, Kind: netsim.KindHello, Payload: self,
				})
			}
		case netsim.KindHello:
			p.Contacts.Add(m.From)
		case netsim.KindIntroduce:
			p.Contacts.Add(m.Payload)
		}
	}
	// Initiate this round's two-hop walk.
	if v := p.Contacts.Random(r); v >= 0 {
		out = append(out, netsim.Message{
			From: self, To: v, Kind: netsim.KindPullRequest, Payload: -1,
		})
	}
	return out
}

// Cluster bundles a network with one handler per node and exposes
// discovery-level queries.
type Cluster struct {
	Net      *netsim.Network
	Handlers []netsim.Handler
	contacts []*Contacts
}

// Protocol selects which discovery protocol a Cluster runs.
type Protocol int

// Available protocols.
const (
	ProtoPush Protocol = iota
	ProtoPull
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	if p == ProtoPush {
		return "push"
	}
	return "pull"
}

// NewCluster builds a cluster whose initial contact lists mirror g.
func NewCluster(g *graph.Undirected, proto Protocol, cfg netsim.Config) *Cluster {
	n := g.N()
	cl := &Cluster{
		Net:      netsim.New(n, cfg),
		Handlers: make([]netsim.Handler, n),
		contacts: make([]*Contacts, n),
	}
	for u := 0; u < n; u++ {
		c := NewContacts(u, g.Neighbors(u, nil))
		cl.contacts[u] = c
		switch proto {
		case ProtoPush:
			cl.Handlers[u] = &PushNode{Contacts: c}
		case ProtoPull:
			cl.Handlers[u] = &PullNode{Contacts: c}
		default:
			panic("protocol: unknown protocol")
		}
	}
	return cl
}

// Contacts returns node u's live contact list.
func (cl *Cluster) Contacts(u int) *Contacts { return cl.contacts[u] }

// Health returns node u's churn state (crash/restart bookkeeping).
func (cl *Cluster) Health(u int) *NodeHealth {
	switch h := cl.Handlers[u].(type) {
	case *PushNode:
		return &h.NodeHealth
	case *PullNode:
		return &h.NodeHealth
	default:
		panic("protocol: handler without health state")
	}
}

// Close releases the network's persistent handler pool.
func (cl *Cluster) Close() { cl.Net.Close() }

// AllDiscovered reports whether every node knows every other node.
func (cl *Cluster) AllDiscovered() bool {
	n := cl.Net.N()
	for _, c := range cl.contacts {
		if c.Len() < n-1 {
			return false
		}
	}
	return true
}

// KnowledgeGraph materializes the union of contact lists as an undirected
// graph (u knowing v yields the edge {u, v}).
func (cl *Cluster) KnowledgeGraph() *graph.Undirected {
	g := graph.NewUndirected(cl.Net.N())
	for u, c := range cl.contacts {
		for _, v := range c.list {
			g.AddEdge(u, v)
		}
	}
	return g
}

// Run executes rounds until all nodes discovered all others or maxRounds
// elapsed, returning the rounds used and whether discovery completed.
func (cl *Cluster) Run(maxRounds int) (int, bool) {
	return cl.Net.Run(cl.Handlers, maxRounds, func(round int) bool {
		return cl.AllDiscovered()
	})
}
