// Package stats provides the summary statistics and regression fits the
// experiment harness uses to compare measured convergence times against the
// paper's asymptotic bounds.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for fewer than 2 values).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It copies and sorts internally.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// MeanCI95 returns the mean and the half-width of a normal-approximation
// 95% confidence interval for it.
func MeanCI95(xs []float64) (mean, halfWidth float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	se := StdDev(xs) / math.Sqrt(float64(len(xs)))
	return mean, 1.96 * se
}

// Summary bundles the standard summary of a sample.
type Summary struct {
	N      int
	Mean   float64
	CI95   float64 // half-width of the 95% CI on the mean
	StdDev float64
	Min    float64
	Median float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	mean, ci := MeanCI95(xs)
	return Summary{
		N:      len(xs),
		Mean:   mean,
		CI95:   ci,
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Median: Median(xs),
		Max:    Max(xs),
	}
}

// String renders "mean ± ci [min, max]".
func (s Summary) String() string {
	return fmt.Sprintf("%.1f ± %.1f [%.0f, %.0f]", s.Mean, s.CI95, s.Min, s.Max)
}

// LinearFit returns the least-squares slope and intercept of y against x,
// plus the coefficient of determination R². It panics if the lengths differ
// or fewer than 2 points are given.
func LinearFit(x, y []float64) (slope, intercept, r2 float64) {
	if len(x) != len(y) {
		panic("stats: LinearFit length mismatch")
	}
	if len(x) < 2 {
		panic("stats: LinearFit needs at least 2 points")
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		panic("stats: LinearFit with constant x")
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		return slope, intercept, 1
	}
	r2 = sxy * sxy / (sxx * syy)
	return slope, intercept, r2
}

// LogLogSlope fits log(y) = a·log(x) + b and returns the exponent a with
// R². This estimates the polynomial order of a scaling curve: convergence
// times growing as n·polylog(n) fit exponents slightly above 1; Θ(n²)
// growth fits exponents near 2. All inputs must be positive.
func LogLogSlope(x, y []float64) (exponent, r2 float64) {
	lx := make([]float64, len(x))
	ly := make([]float64, len(y))
	for i := range x {
		if x[i] <= 0 || y[i] <= 0 {
			panic("stats: LogLogSlope requires positive data")
		}
		lx[i] = math.Log(x[i])
		ly[i] = math.Log(y[i])
	}
	slope, _, r2 := LinearFit(lx, ly)
	return slope, r2
}

// NormalizedRatios returns y[i] / f(x[i]) for a scaling function f. Flat
// ratios across a sweep indicate y = Θ(f(x)); the experiment tables print
// these for f = n·ln n and f = n·ln² n per the paper's bounds.
func NormalizedRatios(x, y []float64, f func(float64) float64) []float64 {
	if len(x) != len(y) {
		panic("stats: NormalizedRatios length mismatch")
	}
	out := make([]float64, len(x))
	for i := range x {
		d := f(x[i])
		if d == 0 {
			panic("stats: NormalizedRatios division by zero")
		}
		out[i] = y[i] / d
	}
	return out
}

// NLogN is the scaling function n·ln n (ln clamped below at 1).
func NLogN(n float64) float64 { return n * clampLog(n) }

// NLog2N is the scaling function n·ln² n.
func NLog2N(n float64) float64 { l := clampLog(n); return n * l * l }

// N2 is the scaling function n².
func N2(n float64) float64 { return n * n }

// N2LogN is the scaling function n²·ln n.
func N2LogN(n float64) float64 { return n * n * clampLog(n) }

func clampLog(n float64) float64 {
	l := math.Log(n)
	if l < 1 {
		return 1
	}
	return l
}
