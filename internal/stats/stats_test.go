package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func close(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !close(m, 5, 1e-12) {
		t.Fatalf("mean %v", m)
	}
	if v := Variance(xs); !close(v, 32.0/7, 1e-12) {
		t.Fatalf("variance %v", v)
	}
	if s := StdDev(xs); !close(s, math.Sqrt(32.0/7), 1e-12) {
		t.Fatalf("stddev %v", s)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("empty-input conventions broken")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("min/max %v %v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty min/max")
	}
}

func TestQuantileMedian(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if q := Median(xs); !close(q, 2.5, 1e-12) {
		t.Fatalf("median %v", q)
	}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 %v", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Fatalf("q1 %v", q)
	}
	if q := Quantile(xs, 0.25); !close(q, 1.75, 1e-12) {
		t.Fatalf("q.25 %v", q)
	}
	if q := Quantile(xs, -1); q != 1 {
		t.Fatalf("clamped q %v", q)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile")
	}
	// Input must not be mutated.
	ys := []float64{3, 1, 2}
	Median(ys)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Fatal("Quantile mutated input")
	}
}

func TestMeanCI95(t *testing.T) {
	xs := []float64{10, 10, 10, 10}
	m, hw := MeanCI95(xs)
	if m != 10 || hw != 0 {
		t.Fatalf("constant CI %v %v", m, hw)
	}
	ys := []float64{0, 10}
	_, hw2 := MeanCI95(ys)
	if hw2 <= 0 {
		t.Fatal("CI should be positive for spread data")
	}
	if _, hw3 := MeanCI95([]float64{5}); hw3 != 0 {
		t.Fatal("single-point CI should be 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 || s.Median != 2 {
		t.Fatalf("summary %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 2x + 3
	slope, intercept, r2 := LinearFit(x, y)
	if !close(slope, 2, 1e-12) || !close(intercept, 3, 1e-12) || !close(r2, 1, 1e-12) {
		t.Fatalf("fit %v %v %v", slope, intercept, r2)
	}
}

func TestLinearFitNoise(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2.1, 3.9, 6.2, 7.8, 10.1} // ~2x
	slope, _, r2 := LinearFit(x, y)
	if slope < 1.8 || slope > 2.2 {
		t.Fatalf("noisy slope %v", slope)
	}
	if r2 < 0.98 {
		t.Fatalf("noisy r2 %v", r2)
	}
}

func TestLinearFitPanics(t *testing.T) {
	for _, f := range []func(){
		func() { LinearFit([]float64{1}, []float64{1, 2}) },
		func() { LinearFit([]float64{1}, []float64{1}) },
		func() { LinearFit([]float64{2, 2}, []float64{1, 3}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestLogLogSlope(t *testing.T) {
	// y = x²: exponent 2.
	x := []float64{2, 4, 8, 16, 32}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = x[i] * x[i]
	}
	exp, r2 := LogLogSlope(x, y)
	if !close(exp, 2, 1e-9) || !close(r2, 1, 1e-9) {
		t.Fatalf("loglog %v %v", exp, r2)
	}
	// y = x·ln²x fits an exponent modestly above 1 on this range.
	for i := range x {
		y[i] = NLog2N(x[i])
	}
	exp2, _ := LogLogSlope(x, y)
	if exp2 < 1.1 || exp2 < 1 || exp2 > 2 {
		t.Fatalf("nlog2n exponent %v", exp2)
	}
}

func TestLogLogSlopePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LogLogSlope([]float64{1, -2}, []float64{1, 2})
}

func TestNormalizedRatios(t *testing.T) {
	x := []float64{4, 8}
	y := []float64{NLogN(4) * 3, NLogN(8) * 3}
	rs := NormalizedRatios(x, y, NLogN)
	if !close(rs[0], 3, 1e-12) || !close(rs[1], 3, 1e-12) {
		t.Fatalf("ratios %v", rs)
	}
}

func TestScalingFunctions(t *testing.T) {
	if NLogN(math.E) != math.E {
		t.Fatalf("NLogN(e) = %v", NLogN(math.E))
	}
	// Log clamp keeps small n sane.
	if NLogN(1) != 1 || NLog2N(1) != 1 {
		t.Fatal("log clamp broken")
	}
	if N2(5) != 25 {
		t.Fatal("N2 wrong")
	}
	if !close(N2LogN(math.E), math.E*math.E, 1e-12) {
		t.Fatal("N2LogN wrong")
	}
}

// Property: mean is within [min, max]; quantiles are monotone in q.
func TestQuickSummaryInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		return Quantile(xs, 0.25) <= Quantile(xs, 0.75)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: LinearFit recovers arbitrary exact affine relationships.
func TestQuickLinearFitRecovery(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		a = math.Mod(a, 100)
		b = math.Mod(b, 100)
		x := []float64{1, 2, 5, 9}
		y := make([]float64, len(x))
		for i := range x {
			y[i] = a*x[i] + b
		}
		slope, intercept, _ := LinearFit(x, y)
		return close(slope, a, 1e-6*(1+math.Abs(a))) && close(intercept, b, 1e-6*(1+math.Abs(b)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
